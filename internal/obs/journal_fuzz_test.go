package obs

import (
	"strings"
	"testing"
)

// FuzzReadJournal: the journal reader faces files truncated mid-write,
// hand-edited, or produced by future span kinds. Whatever the bytes, it
// must either parse or fail with a line-numbered "obs:" error — never
// panic — and a successful parse must survive an emit/re-read roundtrip.
func FuzzReadJournal(f *testing.F) {
	f.Add("{\"t\":1,\"span\":\"round\",\"phase\":\"begin\",\"round\":0}\n")
	f.Add("{\"t\":2,\"span\":\"trace\",\"phase\":\"end\",\"round\":1,\"trace\":{\"id\":\"ab\",\"sid\":\"cd\",\"op\":\"query\",\"start\":1,\"machine\":-1,\"shard\":-1,\"seq\":-1}}\n")
	f.Add("{\"t\":2,\"span\":\"trace\",\"phase\":\"end\",\"round\":1}\n") // payload missing
	f.Add("{\"t\":3,\"span\":\"warp\",\"phase\":\"end\",\"round\":0}\n")  // unknown kind
	f.Add("{\"t\":1,\"span\":\"move\",\"phase\":\"beg")                   // truncated mid-line
	f.Add("not json at all\n")
	f.Add("\n\n\n")
	f.Add("{\"t\":1}\n{\"t\":2}\n")
	f.Fuzz(func(t *testing.T, data string) {
		events, err := ReadJournal(strings.NewReader(data))
		if err != nil {
			msg := err.Error()
			if !strings.HasPrefix(msg, "obs: ") {
				t.Fatalf("error without obs prefix: %q", msg)
			}
			if !strings.Contains(msg, "line ") && !strings.Contains(msg, "read journal") {
				t.Fatalf("parse error without a line number: %q", msg)
			}
			return
		}
		for _, ev := range events {
			if ev.Span == SpanTrace && ev.Trace == nil {
				t.Fatalf("reader admitted a trace span without payload: %+v", ev)
			}
		}
		var b strings.Builder
		j := NewJournal(&b)
		for _, ev := range events {
			j.Emit(ev)
		}
		if err := j.Err(); err != nil {
			t.Fatalf("re-emit of parsed events failed: %v", err)
		}
		again, err := ReadJournal(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-read of re-emitted journal failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("roundtrip changed event count: %d -> %d", len(events), len(again))
		}
	})
}

package ctl

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/obs"
	"rexchange/internal/plan"
	"rexchange/internal/sim"
)

// obsExec attaches a fresh registry + journal to an executor and returns
// the handles for assertions.
func obsExec(t *testing.T, c *cluster.Cluster, cfg ExecConfig) (*Executor, *ctlMetrics, *strings.Builder) {
	t.Helper()
	ex := newExec(t, c, cfg)
	m := newCtlMetrics(obs.NewRegistry())
	var buf strings.Builder
	ex.m = m
	ex.journal = obs.NewJournal(&buf)
	return ex, m, &buf
}

// TestAbortClearsRetryState is the supersession regression test: cancelled
// and aborted moves must not keep attempts/readyAt/finishAt behind, and
// rex_moves_aborted_total must count exactly the aborted in-flight copies
// (not the cancelled pending/retrying ones).
func TestAbortClearsRetryState(t *testing.T) {
	c := mkCluster([]float64{20, 10, 10}, []float64{4, 8})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0})
	pl := &plan.Plan{Moves: []plan.Move{
		{S: 0, From: 0, To: 1},
		{S: 1, From: 0, To: 2},
	}}
	cfg := ExecConfig{Migration: sim.MigrationConfig{Bandwidth: 1, Concurrency: 2}}
	cfg.Failure = func(mv plan.Move, attempt int) bool { return mv.S == 0 && attempt == 1 }
	ex, m, buf := obsExec(t, c, cfg)
	ex.SetPlan(pl)

	if err := ex.Tick(live, 0); err != nil { // both dispatch
		t.Fatal(err)
	}
	if err := ex.Tick(live, 4); err != nil { // shard 0 copy fails → retrying
		t.Fatal(err)
	}
	ctr := ex.Counters()
	if ctr.Failures != 1 || ctr.InFlight != 1 {
		t.Fatalf("setup: want shard 0 retrying and shard 1 in flight, got %+v", ctr)
	}

	ex.SetPlan(nil) // supersede mid-retry, mid-flight

	ctr = ex.Counters()
	if ctr.Aborted != 1 || ctr.Cancelled != 1 {
		t.Fatalf("counters after supersede = %+v, want 1 aborted + 1 cancelled", ctr)
	}
	if got := m.aborted.Value(); got != float64(ctr.Aborted) {
		t.Fatalf("rex_moves_aborted_total = %g, want %d (exactly the aborted copies)", got, ctr.Aborted)
	}
	if got := m.cancelled.Value(); got != float64(ctr.Cancelled) {
		t.Fatalf("rex_exec_cancelled_total = %g, want %d", got, ctr.Cancelled)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Fatalf("rex_exec_in_flight = %g after abort, want 0", got)
	}
	for i := range ex.moves {
		st := &ex.moves[i]
		if st.status != MoveCancelled {
			t.Fatalf("move %d status %v, want cancelled", i, st.status)
		}
		if st.attempts != 0 || st.readyAt != 0 || st.finishAt != 0 || st.startedAt != 0 {
			t.Fatalf("move %d kept retry state behind: %+v", i, *st)
		}
	}
	for _, mv := range ex.MoveStates() {
		if mv.Attempts != 0 || mv.FinishAt != 0 {
			t.Fatalf("MoveStates leaked scheduling state: %+v", mv)
		}
	}

	evs, err := obs.ReadJournal(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	aborts := 0
	for _, ev := range evs {
		if ev.Span == obs.SpanMove && ev.Phase == obs.PhaseEnd && ev.Outcome == obs.OutcomeAborted {
			aborts++
			if ev.Move == nil || ev.Move.Shard != 1 {
				t.Fatalf("aborted journal event names wrong move: %+v", ev)
			}
		}
	}
	if aborts != 1 {
		t.Fatalf("journal recorded %d aborted move spans, want 1", aborts)
	}
}

// TestAbandonedPlanReleasesReservationsOnce guards the double-release bug:
// when a move exhausts MaxAttempts, complete() has already released its
// destination reservation, and the subsequent abort() must not release it
// again — a negative reservation would silently loosen admission for every
// later plan.
func TestAbandonedPlanReleasesReservationsOnce(t *testing.T) {
	c := mkCluster([]float64{10, 10}, []float64{4, 2})
	live := mustPlacement(t, c, []cluster.MachineID{0, 0})
	target := mustPlacement(t, c, []cluster.MachineID{1, 1})
	pl, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := execCfg(1)
	cfg.MaxAttempts = 2
	cfg.BackoffBase = 0.1
	failing := true
	cfg.Failure = func(plan.Move, int) bool { return failing }
	ex := newExec(t, c, cfg)
	ex.SetPlan(pl)
	clock := NewVirtualClock()

	var tickErr error
	for tickErr == nil {
		tickErr = ex.Tick(live, clock.Now())
		if tickErr != nil {
			break
		}
		next, ok := ex.NextEvent(clock.Now())
		if !ok {
			break
		}
		clock.Sleep(next - clock.Now())
	}
	if tickErr == nil || !strings.Contains(tickErr.Error(), "abandoning plan") {
		t.Fatalf("expected abandonment, got %v", tickErr)
	}
	for mID := range ex.reserved {
		for r, v := range ex.reserved[mID] {
			if v != 0 {
				t.Fatalf("machine %d resource %d keeps reservation %g after abandonment", mID, r, v)
			}
		}
	}

	// A follow-up plan over the same shards must run cleanly: with the
	// double release, machine 1 would carry a negative reservation and
	// debugasserts' transient recomputation would panic on the next Tick.
	failing = false
	pl2, err := plan.DefaultPlanner().Build(live, target)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetPlan(pl2)
	drive(t, ex, live, clock)
	if live.Home(0) != 1 || live.Home(1) != 1 {
		t.Fatalf("follow-up plan not realized: homes %d,%d", live.Home(0), live.Home(1))
	}
}

// TestControllerObservability runs the end-to-end drift scenario with a
// registry and journal attached, then cross-checks all three telemetry
// surfaces against the controller's own accounting: the /metrics
// exposition (well-formed, required families present, counter values
// matching ExecCounters), the event journal (span counts matching
// dispatch/completion/abort counts), and the pprof surface.
func TestControllerObservability(t *testing.T) {
	cfg, p, src := e2eConfig(t, 80, 960, 11)
	cfg.Budget = Budget{Iterations: 150, Restarts: 2, SolveSeconds: 1}
	reg := obs.NewRegistry()
	var journalBuf strings.Builder
	cfg.Registry = reg
	cfg.Journal = obs.NewJournal(&journalBuf)
	c, err := New(cfg, NewVirtualClock(), p, src)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	if err := c.Run(rounds); err != nil {
		t.Fatal(err)
	}

	// 1. Scrape /metrics through the real handler and lint it.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	problems := obs.LintExposition(strings.NewReader(exposition),
		"rex_imbalance", "rex_serving", "rex_machines",
		"rex_ctl_rounds_total", "rex_ctl_solves_total", "rex_ctl_state",
		"rex_ctl_solve_seconds", "rex_ctl_planned_moves_total",
		"rex_exec_dispatched_total", "rex_exec_completed_total",
		"rex_exec_in_flight", "rex_exec_copy_seconds",
		"rex_exec_bytes_moved_total", "rex_moves_aborted_total",
		"rex_solver_iterations_total", "rex_solver_runs_total",
	)
	if len(problems) != 0 {
		t.Fatalf("/metrics fails lint: %v\n%s", problems, exposition)
	}

	// 2. Registry counters must agree with the controller's accounting.
	st := c.Status()
	ctr := st.Executor.ExecCounters
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"rex_ctl_rounds_total", c.m.rounds.Value(), float64(st.Round)},
		{"rex_ctl_solves_total", c.m.solves.Value(), float64(st.Solves)},
		{"rex_exec_dispatched_total", c.m.dispatched.Value(), float64(ctr.Dispatched)},
		{"rex_exec_completed_total", c.m.completed.Value(), float64(ctr.Completed)},
		{"rex_exec_failures_total", c.m.failures.Value(), float64(ctr.Failures)},
		{"rex_moves_aborted_total", c.m.aborted.Value(), float64(ctr.Aborted)},
		{"rex_exec_cancelled_total", c.m.cancelled.Value(), float64(ctr.Cancelled)},
		{"rex_exec_bytes_moved_total", c.m.bytesMoved.Value(), ctr.BytesMoved},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %g, want %g", ck.name, ck.got, ck.want)
		}
	}
	if got := int(c.m.copySeconds.Count()); got != ctr.Dispatched-ctr.InFlight {
		t.Errorf("rex_exec_copy_seconds count = %d, want %d finished copies",
			got, ctr.Dispatched-ctr.InFlight)
	}
	if st.Solves == 0 {
		t.Fatal("scenario never solved; observability checks are vacuous")
	}
	if int(c.m.solveSeconds.Count()) != st.Solves {
		t.Errorf("rex_ctl_solve_seconds count = %d, want %d", int(c.m.solveSeconds.Count()), st.Solves)
	}

	// 3. The journal must tell the same story.
	evs, err := obs.ReadJournal(strings.NewReader(journalBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Journal.Err() != nil {
		t.Fatal(cfg.Journal.Err())
	}
	var roundBegin, solveEnd, moveBegin, moveOK, moveAborted int
	for _, ev := range evs {
		switch {
		case ev.Span == obs.SpanRound && ev.Phase == obs.PhaseBegin:
			roundBegin++
		case ev.Span == obs.SpanSolve && ev.Phase == obs.PhaseEnd:
			solveEnd++
		case ev.Span == obs.SpanMove && ev.Phase == obs.PhaseBegin:
			moveBegin++
		case ev.Span == obs.SpanMove && ev.Phase == obs.PhaseEnd && ev.Outcome == obs.OutcomeOK:
			moveOK++
		case ev.Span == obs.SpanMove && ev.Phase == obs.PhaseEnd && ev.Outcome == obs.OutcomeAborted:
			moveAborted++
		}
	}
	if roundBegin != rounds {
		t.Errorf("journal has %d round-begin events, want %d", roundBegin, rounds)
	}
	if solveEnd != st.Solves {
		t.Errorf("journal has %d solve-end events, want %d", solveEnd, st.Solves)
	}
	if moveBegin != ctr.Dispatched {
		t.Errorf("journal has %d move-begin events, want %d dispatches", moveBegin, ctr.Dispatched)
	}
	if moveOK != ctr.Completed {
		t.Errorf("journal has %d completed move spans, want %d", moveOK, ctr.Completed)
	}
	if moveAborted != ctr.Aborted {
		t.Errorf("journal has %d aborted move spans, want %d", moveAborted, ctr.Aborted)
	}

	// 4. pprof is mounted on the same mux.
	pr, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline returned %d", pr.StatusCode)
	}
}

// TestJournalDeterministicAcrossGOMAXPROCS pins the acceptance contract:
// for a fixed configuration on the virtual clock, the event journal's byte
// stream is identical regardless of scheduler parallelism. Every event is
// emitted from the Run goroutine with Clock timestamps, so parallel solver
// restarts cannot reorder or retime it.
func TestJournalDeterministicAcrossGOMAXPROCS(t *testing.T) {
	runAt := func(procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg, p, src := e2eConfig(t, 80, 960, 11)
		cfg.Budget = Budget{Iterations: 150, Restarts: 3, SolveSeconds: 1}
		var buf strings.Builder
		cfg.Journal = obs.NewJournal(&buf)
		cfg.Registry = obs.NewRegistry()
		c, err := New(cfg, NewVirtualClock(), p, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(6); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := runAt(1)
	many := runAt(4)
	if one == "" {
		t.Fatal("empty journal")
	}
	if one != many {
		t.Fatalf("journal bytes differ across GOMAXPROCS:\n 1: %d bytes\n 4: %d bytes", len(one), len(many))
	}
}

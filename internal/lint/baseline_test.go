package lint

import (
	"go/token"
	"strings"
	"testing"
)

func bdiag(file, analyzer, msg string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

// TestBaselineRoundTrip pins the ratchet semantics: a written baseline
// absorbs exactly the diagnostics it recorded — matched by file, analyzer,
// and message but not line, and duplicates only up to their count — while
// anything new stays fatal.
func TestBaselineRoundTrip(t *testing.T) {
	accepted := []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: make", 10),
		bdiag("a.go", "alloccheck", "allocates: make", 20), // same key twice
		bdiag("b.go", "purity", "mutates its receiver", 5),
	}
	var buf strings.Builder
	if err := WriteBaseline(&buf, accepted); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	current := []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: make", 14),        // drifted line: absorbed
		bdiag("a.go", "alloccheck", "allocates: make", 99),        // second duplicate: absorbed
		bdiag("a.go", "alloccheck", "allocates: make", 120),       // third occurrence: fresh
		bdiag("b.go", "purity", "mutates its receiver", 5),        // absorbed
		bdiag("c.go", "sharecheck", "captured by a goroutine", 3), // new file: fresh
	}
	fresh, absorbed := base.Filter(current)
	if absorbed != 3 {
		t.Errorf("absorbed = %d, want 3", absorbed)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 entries", fresh)
	}
	if fresh[0].Pos.Line != 120 || fresh[1].Pos.Filename != "c.go" {
		t.Errorf("fresh = %v, want the third duplicate and the c.go finding", fresh)
	}

	// A nil baseline is a no-op filter.
	var nilBase *Baseline
	fresh, absorbed = nilBase.Filter(current)
	if absorbed != 0 || len(fresh) != len(current) {
		t.Errorf("nil baseline filtered: fresh=%d absorbed=%d", len(fresh), absorbed)
	}
}

// TestBaselineRejectsMalformedLines pins that a corrupt baseline fails
// loudly instead of silently accepting everything.
func TestBaselineRejectsMalformedLines(t *testing.T) {
	_, err := ReadBaseline(strings.NewReader("# comment ok\n\nnot a record\n"))
	if err == nil || !strings.Contains(err.Error(), "baseline line 3") {
		t.Fatalf("err = %v, want malformed-line error naming line 3", err)
	}
}

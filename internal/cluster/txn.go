package cluster

import "rexchange/internal/vec"

// This file implements the placement undo journal — the delta kernel that
// lets the LNS solver try a destroy/repair neighborhood in place and, when
// the neighborhood is rejected, roll the placement back in O(mutations)
// instead of cloning the whole structure up front.
//
// Correctness contract: Rollback restores the placement *bit-for-bit* —
// including the floating-point aggregates (used, load) and the order of
// shards within each on-machine list. Inverse arithmetic (subtracting what
// was added) would leave rounding residue and reordered shard lists, both
// of which are observable downstream (operator tie-breaks iterate hosted
// shards in order; utilization bits feed the objective). The journal
// therefore snapshots the touched machine's aggregates before every
// primitive mutation and restores the saved values in reverse order.

// txnRec journals one primitive placement mutation.
type txnRec struct {
	s     ShardID
	m     MachineID
	place bool // true: place(s, m); false: unplace of s from m
	pos   int  // unplace only: index s held in on[m]

	prevUsed vec.Vec // used[m] before the mutation
	prevLoad float64 // load[m] before the mutation
}

// BeginTxn opens an undo scope: every subsequent Place/Remove/Move is
// journaled until Commit or Rollback. Transactions do not nest; calling
// BeginTxn while one is active panics (the solver's iteration structure
// guarantees strict begin→commit/rollback pairing, so nesting indicates a
// bug).
func (p *Placement) BeginTxn() {
	if p.txnActive {
		panic("cluster: BeginTxn inside an active transaction")
	}
	p.txnActive = true
	p.txnLog = p.txnLog[:0]
}

// InTxn reports whether an undo scope is active.
func (p *Placement) InTxn() bool { return p.txnActive }

// TxnLen returns the number of journaled mutations in the active (or just
// committed) scope. Together with TxnOp it lets callers maintain derived
// incremental state over exactly the shards and machines a neighborhood
// touched, without allocating.
//
//rexlint:noalloc
func (p *Placement) TxnLen() int { return len(p.txnLog) }

// TxnOp returns the shard and machine touched by journaled mutation i
// (0 ≤ i < TxnLen), in application order.
//
//rexlint:noalloc
func (p *Placement) TxnOp(i int) (ShardID, MachineID) {
	r := &p.txnLog[i]
	return r.s, r.m
}

// Commit closes the undo scope keeping every mutation. O(1): the journal is
// simply discarded (its backing array is retained for reuse).
//
//rexlint:noalloc
func (p *Placement) Commit() {
	if !p.txnActive {
		panic("cluster: Commit without BeginTxn")
	}
	p.txnActive = false
	p.txnLog = p.txnLog[:0]
}

// Rollback closes the undo scope undoing every journaled mutation in
// reverse order. The placement is restored exactly to its BeginTxn state:
// aggregate floats are bit-identical and per-machine shard order is
// preserved, so a rolled-back iteration is indistinguishable from one that
// restored a clone. Cost is O(mutations in the scope).
//
//rexlint:noalloc
func (p *Placement) Rollback() {
	if !p.txnActive {
		panic("cluster: Rollback without BeginTxn")
	}
	for i := len(p.txnLog) - 1; i >= 0; i-- {
		r := &p.txnLog[i]
		if r.place {
			p.undoPlace(r)
		} else {
			p.undoUnplace(r)
		}
	}
	p.txnActive = false
	p.txnLog = p.txnLog[:0]
	if DebugAsserts {
		p.MustInvariants("txn rollback")
	}
}

// undoPlace reverses place(s, m). Because records are undone in reverse
// order, on[m] is exactly as it was right after the place: s sits at the
// end of the list.
func (p *Placement) undoPlace(r *txnRec) {
	last := len(p.on[r.m]) - 1
	p.on[r.m] = p.on[r.m][:last]
	if last == 0 {
		p.vacant++
	}
	p.home[r.s] = Unassigned
	p.used[r.m] = r.prevUsed
	p.load[r.m] = r.prevLoad
	if g := p.c.Shards[r.s].Group; g != 0 {
		p.groups[r.m][g]--
		if p.groups[r.m][g] == 0 {
			delete(p.groups[r.m], g)
		}
	}
	p.unassigned++
}

// undoUnplace reverses unplace of s from m. The swap-remove moved the
// then-last shard into index r.pos; put it back at the end and reinstate s
// at its recorded position so the hosted order matches the pre-transaction
// state element for element.
func (p *Placement) undoUnplace(r *txnRec) {
	n := len(p.on[r.m])
	if r.pos == n {
		// s was the last element; the swap was a self-swap
		//rexlint:ignore alloccheck append restores an element just removed; capacity is never exceeded
		p.on[r.m] = append(p.on[r.m], r.s)
	} else {
		moved := p.on[r.m][r.pos]
		//rexlint:ignore alloccheck append restores an element just removed; capacity is never exceeded
		p.on[r.m] = append(p.on[r.m], moved)
		p.pos[moved] = n
		p.on[r.m][r.pos] = r.s
	}
	p.pos[r.s] = r.pos
	if n == 0 {
		//rexlint:ignore nonneg the machine was vacant after the recorded unplace being reversed, so vacant counts it
		p.vacant--
	}
	p.home[r.s] = r.m
	p.used[r.m] = r.prevUsed
	p.load[r.m] = r.prevLoad
	if g := p.c.Shards[r.s].Group; g != 0 {
		if p.groups[r.m] == nil {
			//rexlint:ignore alloccheck rare revival of a deleted group map; steady-state rollbacks do not reach this
			p.groups[r.m] = make(map[int]int)
		}
		p.groups[r.m][g]++
	}
	//rexlint:ignore nonneg undoUnplace reverses an unplace that incremented unassigned
	p.unassigned--
}

package des

import (
	"rexchange/internal/ctl"
	"rexchange/internal/obs"
)

// Query tracing. A sampled query becomes a span tree:
//
//	query (root, arrival → completion, tagged with migration phase)
//	├── leg i (enqueue → service done, per fan-out leg)
//	│   ├── queue   (enqueue → service start)
//	│   └── service (service start → service done)
//	├── …
//	└── merge (first leg completion → last leg completion)
//
// Trace IDs come from the tracer's isolated rng stream; every span ID is
// derived from the trace ID and the span's position (obs.DeriveSpan), so
// the journal bytes are a pure function of the configuration. Spans are
// emitted at their end times, in event order, from the single simulator
// goroutine — deterministic across GOMAXPROCS by construction.
//
// Blame attribution: a leg delayed by migration carries a blocked_by
// link naming one move (ctl.MoveRef). Two delay mechanisms compete:
//
//   - drag: copies streaming off the machine during the leg's own
//     service slowed it from speed to effSvc, costing
//     work·serveScale·(1/effSvc − 1/speed) seconds;
//   - queue: the wait behind earlier legs was stretched because the
//     machine was degraded when the leg enqueued, costing approximately
//     wait·(1 − effEnq/speed) seconds (the wait that an undegraded
//     machine would not have charged).
//
// The larger of the two wins and is charged to the oldest copy active on
// the machine at the relevant instant — the one that has degraded the
// machine longest. The estimate is conservative per leg but exact in
// aggregate intent: it never names a move whose copy was not actually
// streaming off the delayed leg's machine.

// Span-tree indices under a query trace (obs.DeriveSpan tuples).
const (
	idxQueryRoot = 0
	idxMergeSpan = 1
	idxLegBase   = 2 // legs are (idxLegBase, i); children (idxLegBase, i, 0|1)
)

// Child indices within one leg span.
const (
	idxQueueChild   = 0
	idxServiceChild = 1
)

// legTrace is the per-leg capture of a sampled query, allocated only for
// sampled legs and carried by pointer in the machine ring.
type legTrace struct {
	trace   obs.TraceID
	idx     int // leg index within the query's fan-out
	shard   int
	machine int

	enq       float64 // enqueue time
	effEnq    float64 // machine effective speed at enqueue
	copiesEnq int
	refEnq    ctl.MoveRef // oldest active copy at enqueue (valid when copiesEnq > 0)

	svcAt     float64 // service start time
	effSvc    float64 // machine effective speed at service start
	copiesSvc int
	refSvc    ctl.MoveRef
}

// tracedQuery is the per-query merge-tracking state of a sampled query,
// kept in Sim.traced until completion.
type tracedQuery struct {
	id        obs.TraceID
	firstDone float64 // earliest leg completion (merge span start)
	legsDone  int
	slowMach  int // machine of the last-completing leg
}

// traceQuery registers a freshly sampled query.
func (s *Sim) traceQuery(qi int32, id obs.TraceID) *tracedQuery {
	tq := &tracedQuery{id: id, slowMach: -1}
	s.traced[qi] = tq
	return tq
}

// traceEnqueue captures the enqueue-side state of one sampled leg.
func (s *Sim) traceEnqueue(tq *tracedQuery, i, shard, mi int, t float64, m *machine) *legTrace {
	lt := &legTrace{
		trace: tq.id, idx: i, shard: shard, machine: mi,
		enq: t, effEnq: m.effectiveSpeed(s.cfg.Drag), copiesEnq: len(m.refs),
	}
	if ref, ok := m.oldestRef(); ok {
		lt.refEnq = ref
	}
	return lt
}

// blame attributes the leg's migration-induced delay to one move, or nil
// when no copy touched it.
func (lt *legTrace) blame(work, serveScale, speed float64) *obs.BlameRef {
	var dragDelay, queueDelay float64
	if lt.copiesSvc > 0 && lt.effSvc < speed {
		dragDelay = work * serveScale * (1/lt.effSvc - 1/speed)
	}
	if lt.copiesEnq > 0 && lt.effEnq < speed {
		queueDelay = (lt.svcAt - lt.enq) * (1 - lt.effEnq/speed)
	}
	switch {
	case dragDelay <= 0 && queueDelay <= 0:
		return nil
	case dragDelay >= queueDelay:
		return &obs.BlameRef{
			Round: lt.refSvc.Round, Seq: lt.refSvc.Seq,
			Machine: lt.machine, Kind: obs.BlameDrag, Delay: dragDelay,
		}
	default:
		return &obs.BlameRef{
			Round: lt.refEnq.Round, Seq: lt.refEnq.Seq,
			Machine: lt.machine, Kind: obs.BlameQueue, Delay: queueDelay,
		}
	}
}

// curWindow is the measurement window in progress, used as the Round tag
// on simulator-emitted trace records. Campaigns align the window with
// the control round, so the tag slices a journal consistently.
func (s *Sim) curWindow() int {
	if s.windowIdx > 0 {
		return s.windowIdx - 1
	}
	return 0
}

// traceLegDone emits the queue, service, and leg spans of one completed
// sampled leg and advances its query's merge tracking.
func (s *Sim) traceLegDone(t float64, l *leg, m *machine) {
	lt := l.tr
	legSpan := obs.DeriveSpan(lt.trace, idxLegBase, lt.idx)
	id := lt.trace.String()
	parent := legSpan.String()
	w := s.curWindow()
	s.tracer.Emit(lt.svcAt, w, obs.TraceEvent{
		ID: id, Span: obs.DeriveSpan(lt.trace, idxLegBase, lt.idx, idxQueueChild).String(),
		Parent: parent, Op: obs.OpQueue,
		Start: lt.enq, Machine: lt.machine, Shard: lt.shard, Seq: -1,
	})
	s.tracer.Emit(t, w, obs.TraceEvent{
		ID: id, Span: obs.DeriveSpan(lt.trace, idxLegBase, lt.idx, idxServiceChild).String(),
		Parent: parent, Op: obs.OpService,
		Start: lt.svcAt, Machine: lt.machine, Shard: lt.shard, Seq: -1,
	})
	s.tracer.Emit(t, w, obs.TraceEvent{
		ID: id, Span: legSpan.String(),
		Parent: obs.DeriveSpan(lt.trace, idxQueryRoot).String(), Op: obs.OpLeg,
		Start: lt.enq, Machine: lt.machine, Shard: lt.shard, Seq: -1,
		Blocked: lt.blame(l.work, s.serveScale, m.speed),
	})
	if tq, ok := s.traced[l.q]; ok {
		if tq.legsDone == 0 {
			tq.firstDone = t
		}
		tq.legsDone++
		tq.slowMach = lt.machine // the leg completing last overwrites
	}
}

// traceComplete emits the merge barrier and root spans of a completed
// sampled query and retires its tracking entry.
func (s *Sim) traceComplete(t float64, qi int32, tq *tracedQuery, arrive float64, ph Phase) {
	w := s.curWindow()
	root := obs.DeriveSpan(tq.id, idxQueryRoot)
	s.tracer.Emit(t, w, obs.TraceEvent{
		ID: tq.id.String(), Span: obs.DeriveSpan(tq.id, idxMergeSpan).String(),
		Parent: root.String(), Op: obs.OpMerge,
		Start: tq.firstDone, Machine: tq.slowMach, Shard: -1, Seq: -1,
	})
	s.tracer.Emit(t, w, obs.TraceEvent{
		ID: tq.id.String(), Span: root.String(), Op: obs.OpQuery,
		Start: arrive, Machine: -1, Shard: -1, Seq: -1,
		Mig: ph.String(),
	})
	delete(s.traced, qi)
}

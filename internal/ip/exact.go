package ip

import (
	"math"
	"sort"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// SolveExact solves the same integer program as Solve with a combinatorial
// branch-and-bound specialized to its structure, which certifies optima
// orders of magnitude faster than the LP-relaxation search:
//
//   - the K returned machines are enumerated as forbidden subsets (any
//     solution with ≥K vacant machines survives under some such subset);
//   - shards are assigned depth-first in decreasing load order;
//   - nodes are pruned against max(current makespan, remaining-load/
//     capacity bound, heaviest-remaining-shard bound);
//   - empty machines with identical (speed, capacity) are interchangeable
//     and only the first is branched on.
//
// Solve (the LP-based search) remains as the formulation's reference
// implementation and cross-check.
func (md *Model) SolveExact(opt Options) (*Result, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	c := md.c
	M := c.NumMachines()
	S := c.NumShards()

	order := make([]int, S)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := c.Shards[order[i]].Load, c.Shards[order[j]].Load
		if a != b {
			return a > b
		}
		am, bm := c.Shards[order[i]].Static.MaxDim(), c.Shards[order[j]].Static.MaxDim()
		if am != bm {
			return am > bm
		}
		return order[i] < order[j]
	})
	// suffix sums of remaining load and the heaviest remaining shard
	sufLoad := make([]float64, S+1)
	for i := S - 1; i >= 0; i-- {
		sufLoad[i] = sufLoad[i+1] + c.Shards[order[i]].Load
	}

	st := &exactState{
		md:       md,
		order:    order,
		sufLoad:  sufLoad,
		loads:    make([]float64, M),
		used:     make([]vec.Vec, M),
		assign:   make([]cluster.MachineID, S),
		best:     math.Inf(1),
		maxNodes: maxNodes,
	}
	if opt.IncumbentObj > 0 {
		st.best = opt.IncumbentObj + 1e-9
	}

	// enumerate forbidden (returned) subsets of size exactly K; the
	// overall lower bound is the best (smallest) per-subset load/capacity
	// bound, since the optimum is free to pick its subset.
	forbidden := make([]bool, M)
	rootBound := math.Inf(1)
	var enumerate func(from, left int)
	enumerate = func(from, left int) {
		if st.nodes > st.maxNodes {
			return
		}
		if left == 0 {
			speedSum := 0.0
			for m := 0; m < M; m++ {
				if !forbidden[m] {
					speedSum += c.Machines[m].Speed
				}
			}
			if speedSum <= 0 {
				return
			}
			if b := sufLoad[0] / speedSum; b < rootBound {
				rootBound = b
			}
			st.forbidden = forbidden
			st.speedSum = speedSum
			st.dfs(0, 0)
			return
		}
		for m := from; m <= M-left; m++ {
			forbidden[m] = true
			enumerate(m+1, left-1)
			forbidden[m] = false
		}
	}
	enumerate(0, md.k)
	if math.IsInf(rootBound, 1) {
		rootBound = 0
	}

	res := &Result{Nodes: st.nodes, RootBound: rootBound}
	switch {
	case st.nodes > st.maxNodes:
		res.Status = NodeLimit
	case math.IsInf(st.best, 1):
		res.Status = Infeasible
		return res, nil
	default:
		res.Status = Optimal
	}
	if st.bestAssign != nil {
		// On NodeLimit this is the best found, without a certificate.
		res.Objective = st.best
		res.Assignment = st.bestAssign
	}
	return res, nil
}

// exactState is the DFS search state for SolveExact.
type exactState struct {
	md      *Model
	order   []int
	sufLoad []float64

	forbidden []bool
	speedSum  float64

	loads  []float64
	used   []vec.Vec
	assign []cluster.MachineID

	best       float64
	bestAssign []cluster.MachineID

	nodes    int
	maxNodes int
}

// dfs assigns order[idx:] with current makespan curMax.
func (st *exactState) dfs(idx int, curMax float64) {
	if st.nodes > st.maxNodes {
		return
	}
	st.nodes++
	c := st.md.c
	// bound: even perfect splitting of the remaining load cannot beat best
	lb := curMax
	if avg := (st.assignedLoad(idx) + st.sufLoad[idx]) / st.speedSum; avg > lb {
		lb = avg
	}
	if lb >= st.best-1e-12 {
		return
	}
	if idx == len(st.order) {
		st.best = curMax
		st.bestAssign = append([]cluster.MachineID(nil), st.assign...)
		return
	}
	s := st.order[idx]
	sh := &c.Shards[s]

	// symmetry: among empty machines with identical speed+capacity, try
	// only the first.
	triedEmpty := make(map[[2]float64]bool)
	for m := 0; m < len(st.loads); m++ {
		if st.forbidden[m] {
			continue
		}
		mach := &c.Machines[m]
		if st.loads[m] == 0 && st.used[m].IsZero() {
			key := [2]float64{mach.Speed, mach.Capacity.Sum()}
			if triedEmpty[key] {
				continue
			}
			triedEmpty[key] = true
		}
		if !sh.Static.FitsWithin(st.used[m], mach.Capacity) {
			continue
		}
		if sh.Group != 0 && st.groupOn(idx, sh.Group, cluster.MachineID(m)) {
			continue // a replica of this group already sits on m
		}
		newU := (st.loads[m] + sh.Load) / mach.Speed
		next := curMax
		if newU > next {
			next = newU
		}
		if next >= st.best-1e-12 {
			continue
		}
		st.loads[m] += sh.Load
		st.used[m] = st.used[m].Add(sh.Static)
		st.assign[s] = cluster.MachineID(m)
		st.dfs(idx+1, next)
		st.loads[m] -= sh.Load
		st.used[m] = st.used[m].Sub(sh.Static)
	}
}

// assignedLoad returns the total load already placed before index idx.
func (st *exactState) assignedLoad(idx int) float64 {
	return st.sufLoad[0] - st.sufLoad[idx]
}

// groupOn reports whether any already-assigned shard (order positions
// before idx) of group g sits on machine m. Groups are tiny (the replica
// factor), so a linear scan over earlier positions is cheap.
func (st *exactState) groupOn(idx int, g int, m cluster.MachineID) bool {
	c := st.md.c
	for pos := 0; pos < idx; pos++ {
		s := st.order[pos]
		if c.Shards[s].Group == g && st.assign[s] == m {
			return true
		}
	}
	return false
}

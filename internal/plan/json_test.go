package plan

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Moves: []Move{
			{S: 3, From: 0, To: 2},
			{S: 1, From: 2, To: 1},
			{S: 3, From: 2, To: 0},
		},
		Staged:    1,
		Displaced: 0,
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, p)
	}
}

func TestPlanJSONFileRoundTrip(t *testing.T) {
	p := &Plan{Moves: []Move{{S: 0, From: 1, To: 0}}}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("file roundtrip mismatch: %+v vs %+v", got, p)
	}
}

func TestPlanLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":     `{"moves": [`,
		"negative id": `{"moves": [{"s": -1, "from": 0, "to": 1}]}`,
		"self move":   `{"moves": [{"s": 0, "from": 2, "to": 2}]}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

package ip

import (
	"math"
	"testing"

	"rexchange/internal/cluster"
	"rexchange/internal/vec"
)

// replicaCluster: two replicas (group 1) of load 3 plus a load-1 shard on
// two machines. Without anti-affinity both replicas would share a machine
// for makespan 3/…; with it, the optimum is forced to split them.
func replicaCluster() *cluster.Cluster {
	return &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 3, Group: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 3, Group: 1},
			{ID: 2, Static: vec.Uniform(1), Load: 1},
		},
	}
}

func TestExactAntiAffinity(t *testing.T) {
	md, err := BuildModel(replicaCluster(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// replicas split 3|3, extra shard lands on either → makespan 4
	if math.Abs(res.Objective-4) > 1e-9 {
		t.Errorf("objective = %v, want 4", res.Objective)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("replicas co-located in optimal assignment")
	}
}

func TestLPBnBAntiAffinity(t *testing.T) {
	md, err := BuildModel(replicaCluster(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Solve(Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-4) > 1e-6 {
		t.Errorf("objective = %v, want 4", res.Objective)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("replicas co-located in optimal assignment")
	}
}

func TestExactAntiAffinityInfeasible(t *testing.T) {
	// 3 replicas, 2 machines: impossible.
	c := &cluster.Cluster{
		Machines: []cluster.Machine{
			{ID: 0, Capacity: vec.Uniform(10), Speed: 1},
			{ID: 1, Capacity: vec.Uniform(10), Speed: 1},
		},
		Shards: []cluster.Shard{
			{ID: 0, Static: vec.Uniform(1), Load: 1, Group: 1},
			{ID: 1, Static: vec.Uniform(1), Load: 1, Group: 1},
			{ID: 2, Static: vec.Uniform(1), Load: 1, Group: 1},
		},
	}
	md, err := BuildModel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.SolveExact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

// Replicas: the replicated-fleet extension. Every logical shard has two
// replicas that must live on distinct machines (anti-affinity); queries
// pick a replica per routing policy. The example rebalances the fleet with
// SRA (in parallel multi-start mode) and compares tail latency across
// routing policies, before and after — showing that placement-time balance
// and query-time routing are complementary levers.
package main

import (
	"fmt"
	"log"

	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

func main() {
	gen := workload.DefaultConfig()
	gen.Machines = 30
	gen.Shards = 200 // logical shards → 400 physical replicas
	gen.Replicas = 2
	gen.TargetFill = 0.8
	gen.Seed = 17
	inst, err := workload.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d machines, %d logical shards × 2 replicas\n",
		gen.Machines, gen.Shards)

	// Borrow two exchange machines and rebalance with 4 parallel restarts.
	c := inst.Cluster
	ec := c.WithExchange(2, c.TotalCapacity().Scale(1/float64(c.NumMachines())), 1)
	p, err := cluster.FromAssignment(ec, inst.Placement.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Iterations = 1500
	res, err := core.New(cfg).SolveParallel(p, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalance: maxU %.4f → %.4f (%d moves, anti-affinity preserved)\n\n",
		res.Before.MaxUtil, res.After.MaxUtil, res.MovedShards)

	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 45, BaseRate: 40, DiurnalAmp: 0.3, Period: 45,
		CostSigma: 0.4, Seed: 29,
	})
	if err != nil {
		log.Fatal(err)
	}
	workScale := 0.9 * 4 / (40 * res.Before.MaxUtil)

	fmt.Printf("%-12s %-14s %8s %8s %8s\n", "placement", "routing", "p50", "p95", "p99")
	for _, pl := range []struct {
		name string
		p    *cluster.Placement
	}{{"initial", p}, {"rebalanced", res.Final}} {
		for _, routing := range []sim.Routing{
			sim.RouteStatic, sim.RouteRoundRobin, sim.RouteLeastLoaded,
		} {
			rep, err := sim.Run(pl.p, trace, sim.Config{
				Cores: 4, WorkScale: workScale, Routing: routing,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-14s %7.3fs %7.3fs %7.3fs\n",
				pl.name, routing, rep.P50, rep.P95, rep.P99)
		}
	}
}

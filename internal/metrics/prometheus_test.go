package metrics

import (
	"math"
	"strings"
	"testing"

	"rexchange/internal/obs"
	"rexchange/internal/vec"
)

// TestWritePrometheusFormat pins the exact exposition text for a fixed
// report: scrapers parse this format, so any drift is a breaking change.
// Families render in registry order (alphabetical); series within
// rex_static_pressure sort by label value.
func TestWritePrometheusFormat(t *testing.T) {
	r := Report{
		Machines:       3,
		Vacant:         1,
		MaxUtil:        0.9,
		MinUtil:        0.25,
		MeanUtil:       0.6,
		Imbalance:      1.5,
		StdDev:         0.25,
		CV:             0.125,
		Gini:           0.2,
		StaticPressure: vec.New(0.5, 1, 0.25),
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rex_imbalance MaxUtil/MeanUtil; 1.0 is perfect balance.
# TYPE rex_imbalance gauge
rex_imbalance 1.5
# HELP rex_machines Number of serving (non-vacant) machines.
# TYPE rex_machines gauge
rex_machines 3
# HELP rex_max_util Highest load/speed among serving machines.
# TYPE rex_max_util gauge
rex_max_util 0.9
# HELP rex_mean_util Capacity-weighted ideal utilization.
# TYPE rex_mean_util gauge
rex_mean_util 0.6
# HELP rex_min_util Lowest load/speed among serving machines.
# TYPE rex_min_util gauge
rex_min_util 0.25
# HELP rex_serving 1 when at least one machine serves shards; utilization gauges are meaningful only then.
# TYPE rex_serving gauge
rex_serving 1
# HELP rex_static_pressure Max used/capacity over machines, per static resource.
# TYPE rex_static_pressure gauge
rex_static_pressure{resource="disk"} 1
rex_static_pressure{resource="mem"} 0.5
rex_static_pressure{resource="net"} 0.25
# HELP rex_util_cv Coefficient of variation of per-machine utilization.
# TYPE rex_util_cv gauge
rex_util_cv 0.125
# HELP rex_util_gini Gini coefficient of per-machine utilization.
# TYPE rex_util_gini gauge
rex_util_gini 0.2
# HELP rex_util_stddev Standard deviation of per-machine utilization.
# TYPE rex_util_stddev gauge
rex_util_stddev 0.25
# HELP rex_vacant_machines Number of machines hosting no shards.
# TYPE rex_vacant_machines gauge
rex_vacant_machines 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if problems := obs.LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("exposition fails lint: %v", problems)
	}
}

// TestWritePrometheusFloats checks the value rendering corner cases survive
// a Prometheus parse: shortest round-trip form, no localized formatting.
func TestWritePrometheusFloats(t *testing.T) {
	r := Report{MaxUtil: 1.0 / 3.0, Imbalance: 1e-9}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rex_max_util 0.3333333333333333\n") {
		t.Fatalf("unexpected float rendering:\n%s", out)
	}
	if !strings.Contains(out, "rex_imbalance 1e-09\n") {
		t.Fatalf("unexpected exponent rendering:\n%s", out)
	}
}

// TestPromFloatSpecials pins the Prometheus spellings of the IEEE special
// values: a scraper must see NaN / +Inf / -Inf, never Go's default
// renderings of them embedded in some other spelling.
func TestPromFloatSpecials(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(+1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{-0.5, "-0.5"},
	}
	for _, c := range cases {
		if got := promFloat(c.in); got != c.want {
			t.Errorf("promFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusZeroServing checks the drained-cluster contract: with
// no serving machines every utilization gauge is exactly 0 (never NaN) and
// rex_serving distinguishes the empty cluster from a perfectly balanced
// one.
func TestWritePrometheusZeroServing(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, Report{Vacant: 4}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("zero-serving report leaked NaN:\n%s", out)
	}
	for _, want := range []string{
		"rex_serving 0\n",
		"rex_machines 0\n",
		"rex_vacant_machines 4\n",
		"rex_max_util 0\n",
		"rex_imbalance 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in zero-serving exposition:\n%s", want, out)
		}
	}
}

// TestCollectorOverwritesStale checks that a collector reused across
// snapshots fully replaces the previous report, including the serving
// indicator flipping when a cluster drains.
func TestCollectorOverwritesStale(t *testing.T) {
	reg := obs.NewRegistry()
	col := NewCollector(reg)
	col.Set(Report{Machines: 2, MaxUtil: 0.8, Imbalance: 1.2, StaticPressure: vec.Uniform(0.5)})
	col.Set(Report{Vacant: 2})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rex_serving 0\n",
		"rex_max_util 0\n",
		"rex_imbalance 0\n",
		`rex_static_pressure{resource="disk"} 0` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stale value survived, missing %q:\n%s", want, out)
		}
	}
}

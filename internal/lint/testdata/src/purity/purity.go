// Fixture for the purity analyzer: //rexlint:pure functions must classify
// as pure on the summary lattice. Reading state and allocating fresh
// values are allowed; mutation, package effects, wall-clock reads, and
// effects hidden behind callees are not.
package purity

import "time"

type counter struct{ n int }

var total int

//rexlint:pure
func (c *counter) bump() { // want `\(purity\.counter\)\.bump is declared //rexlint:pure but is mutates-receiver: it mutates its receiver`
	c.n++
}

//rexlint:pure
func addTotal(v int) { // want `purity\.addTotal is declared //rexlint:pure but is global-effect: it has package-level effects`
	total += v
}

//rexlint:pure
func writesParam(xs []int) { // want `purity\.writesParam is declared //rexlint:pure but is mutates-receiver: it writes through a parameter`
	xs[0] = 1
}

func readClock() int64 { return time.Now().UnixNano() }

//rexlint:pure
func hidesClock() int64 {
	return readClock() // want `purity\.hidesClock is declared //rexlint:pure but is global-effect: it reads the wall clock \(time\.Now\) \(via purity\.readClock\)`
}

// mutator is impure; pureCaller inherits the mutation through the summary.
func (c *counter) mutator() { c.n = 0 }

//rexlint:pure
func pureCaller(c *counter) { // want `purity\.pureCaller is declared //rexlint:pure but is mutates-receiver: it writes through a parameter`
	c.mutator()
}

// --- near-misses: all of the below must stay silent ---

// get only reads its receiver: reads-receiver is within the pure contract.
//
//rexlint:pure
func (c *counter) get() int {
	return c.n
}

// fresh allocates and returns a new value: allocation alone is pure.
//
//rexlint:pure
func fresh(n int) []int {
	return make([]int, n)
}

// sumOf reads a parameter without writing through it.
//
//rexlint:pure
func sumOf(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

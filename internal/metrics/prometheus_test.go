package metrics

import (
	"strings"
	"testing"

	"rexchange/internal/vec"
)

// TestWritePrometheusFormat pins the exact exposition text for a fixed
// report: scrapers parse this format, so any drift is a breaking change.
func TestWritePrometheusFormat(t *testing.T) {
	r := Report{
		Machines:       3,
		Vacant:         1,
		MaxUtil:        0.9,
		MinUtil:        0.25,
		MeanUtil:       0.6,
		Imbalance:      1.5,
		StdDev:         0.25,
		CV:             0.125,
		Gini:           0.2,
		StaticPressure: vec.New(0.5, 1, 0.25),
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rex_machines Number of serving (non-vacant) machines.
# TYPE rex_machines gauge
rex_machines 3
# HELP rex_vacant_machines Number of machines hosting no shards.
# TYPE rex_vacant_machines gauge
rex_vacant_machines 1
# HELP rex_max_util Highest load/speed among serving machines.
# TYPE rex_max_util gauge
rex_max_util 0.9
# HELP rex_min_util Lowest load/speed among serving machines.
# TYPE rex_min_util gauge
rex_min_util 0.25
# HELP rex_mean_util Capacity-weighted ideal utilization.
# TYPE rex_mean_util gauge
rex_mean_util 0.6
# HELP rex_imbalance MaxUtil/MeanUtil; 1.0 is perfect balance.
# TYPE rex_imbalance gauge
rex_imbalance 1.5
# HELP rex_util_stddev Standard deviation of per-machine utilization.
# TYPE rex_util_stddev gauge
rex_util_stddev 0.25
# HELP rex_util_cv Coefficient of variation of per-machine utilization.
# TYPE rex_util_cv gauge
rex_util_cv 0.125
# HELP rex_util_gini Gini coefficient of per-machine utilization.
# TYPE rex_util_gini gauge
rex_util_gini 0.2
# HELP rex_static_pressure Max used/capacity over machines, per static resource.
# TYPE rex_static_pressure gauge
rex_static_pressure{resource="mem"} 0.5
rex_static_pressure{resource="disk"} 1
rex_static_pressure{resource="net"} 0.25
`
	if got := b.String(); got != want {
		t.Fatalf("exposition format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusFloats checks the value rendering corner cases survive
// a Prometheus parse: shortest round-trip form, no localized formatting.
func TestWritePrometheusFloats(t *testing.T) {
	r := Report{MaxUtil: 1.0 / 3.0, Imbalance: 1e-9}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rex_max_util 0.3333333333333333\n") {
		t.Fatalf("unexpected float rendering:\n%s", out)
	}
	if !strings.Contains(out, "rex_imbalance 1e-09\n") {
		t.Fatalf("unexpected exponent rendering:\n%s", out)
	}
}

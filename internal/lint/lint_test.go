package lint_test

import (
	"testing"

	"rexchange/internal/lint"
	"rexchange/internal/lint/linttest"
)

// TestAnalyzers runs each analyzer over its fixture package and checks the
// reported diagnostics against the // want comments in the fixture.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		fixture  string
	}{
		{lint.NoGlobalRand, "noglobalrand"},
		{lint.MapOrder, "maporder"},
		{lint.FloatEq, "floateq"},
		{lint.ErrIgnore, "errignore"},
		{lint.MetricName, "metricname"},
		{lint.LockCheck, "lockcheck"},
		{lint.ClockPurity, "clockpurity"},
		{lint.StateCheck, "statecheck"},
		{lint.LeakCheck, "leakcheck"},
		{lint.ShareCheck, "sharecheck"},
		{lint.AllocCheck, "alloccheck"},
		{lint.Purity, "purity"},
		{lint.StreamFlow, "streamflow"},
		{lint.DetFlow, "detflow"},
		{lint.NonNeg, "nonneg"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fixture, func(t *testing.T) {
			t.Parallel()
			linttest.Run(t, tc.analyzer, tc.fixture)
		})
	}
}

// TestAnalyzerScopes pins the package-scope policy wired up by Analyzers:
// which analyzers apply to which parts of the module.
func TestAnalyzerScopes(t *testing.T) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.Analyzers("rexchange") {
		byName[a.Name] = a
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"noglobalrand", "rexchange/internal/core", true},
		{"noglobalrand", "rexchange/cmd/rexbench", true},
		{"maporder", "rexchange/internal/core", true},
		{"maporder", "rexchange/internal/sim", true},
		{"maporder", "rexchange/internal/des", true},
		{"maporder", "rexchange/internal/invindex", false},
		{"floateq", "rexchange/internal/metrics", true},
		{"floateq", "rexchange/internal/des", true},
		{"floateq", "rexchange/internal/lint", false},
		{"errignore", "rexchange/internal/plan", true},
		{"errignore", "rexchange/cmd/rexbench", false},
		{"metricname", "rexchange/internal/ctl", true},
		{"metricname", "rexchange/cmd/rexd", true},
		{"lockcheck", "rexchange/internal/obs", true},
		{"lockcheck", "rexchange/cmd/rexd", true},
		{"statecheck", "rexchange/internal/ctl", true},
		{"clockpurity", "rexchange/internal/ctl", true},
		{"clockpurity", "rexchange/internal/sim", true},
		{"clockpurity", "rexchange/internal/des", true},
		{"clockpurity", "rexchange/internal/lint", false},
		{"leakcheck", "rexchange/internal/ctl", true},
		{"leakcheck", "rexchange/cmd/rexd", true},
		{"leakcheck", "rexchange/internal/core", false},
		{"sharecheck", "rexchange/internal/core", true},
		{"sharecheck", "rexchange/internal/cluster", true},
		{"sharecheck", "rexchange/internal/lint", false},
		{"alloccheck", "rexchange/internal/cluster", true},
		{"alloccheck", "rexchange/cmd/rexd", true},
		{"purity", "rexchange/internal/vec", true},
		{"purity", "rexchange/internal/obs", true},
		{"streamflow", "rexchange/internal/des", true},
		{"streamflow", "rexchange/cmd/rexd", true},
		{"detflow", "rexchange/internal/obs", true},
		{"detflow", "rexchange/internal/des", true},
		{"detflow", "rexchange/internal/ctl", true},
		{"detflow", "rexchange/internal/core", false},
		{"nonneg", "rexchange/internal/cluster", true},
		{"nonneg", "rexchange/internal/lint", true},
	}
	for _, tc := range cases {
		a, ok := byName[tc.analyzer]
		if !ok {
			t.Fatalf("analyzer %s not registered", tc.analyzer)
		}
		if got := a.AppliesTo(tc.pkg); got != tc.want {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", tc.analyzer, tc.pkg, got, tc.want)
		}
	}
}

// TestLoaderLoadsModulePackages is a smoke test that the source loader can
// typecheck a real module package (with stdlib imports) offline.
func TestLoaderLoadsModulePackages(t *testing.T) {
	loader := linttest.NewLoader(t)
	pkgs, err := loader.Load([]string{"./internal/vec"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types.Name() != "vec" {
		t.Errorf("package name = %s, want vec", pkgs[0].Types.Name())
	}
	if len(pkgs[0].Files) == 0 {
		t.Error("no files loaded for internal/vec")
	}
}

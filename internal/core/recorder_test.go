package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"rexchange/internal/obs"
)

// countingRecorder is a test Recorder accumulating everything it is told.
type countingRecorder struct {
	mu       sync.Mutex
	byTriple map[[3]string]int
	runs     int
	iters    int
	accepted int
	failures int
	seconds  float64
}

func newCountingRecorder() *countingRecorder {
	return &countingRecorder{byTriple: make(map[[3]string]int)}
}

func (r *countingRecorder) RecordIterations(d, rp, outcome string, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byTriple[[3]string{d, rp, outcome}] += n
}

func (r *countingRecorder) RecordRun(iterations, accepted, repairFailures int, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	r.iters += iterations
	r.accepted += accepted
	r.failures += repairFailures
	r.seconds += seconds
}

// TestRecorderCountsMatchResult cross-checks the telemetry against the
// Result: every iteration lands in exactly one outcome bucket, and the
// accepted/new-best/improved buckets reconcile with Result.Accepted.
func TestRecorderCountsMatchResult(t *testing.T) {
	p := smallInstance(t, 2, 2)
	cfg := quickConfig()
	cfg.Iterations = 600
	rec := newCountingRecorder()
	cfg.Recorder = rec
	res, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	total, acceptedish, failed := 0, 0, 0
	for k, n := range rec.byTriple {
		total += n
		switch k[2] {
		case IterAccepted, IterImproved, IterNewBest:
			acceptedish += n
		case IterRepairFailed:
			failed += n
		case IterRejected:
		default:
			t.Errorf("unknown outcome label %q", k[2])
		}
	}
	if total != cfg.Iterations {
		t.Errorf("outcome counts sum to %d, want %d", total, cfg.Iterations)
	}
	if acceptedish != res.Accepted {
		t.Errorf("accepted-ish outcomes %d, want Result.Accepted %d", acceptedish, res.Accepted)
	}
	if failed != res.RepairFailures {
		t.Errorf("repair_failed outcomes %d, want Result.RepairFailures %d", failed, res.RepairFailures)
	}
	if rec.runs != 1 || rec.iters != cfg.Iterations {
		t.Errorf("run totals = %d runs / %d iters, want 1 / %d", rec.runs, rec.iters, cfg.Iterations)
	}
	if rec.seconds <= 0 {
		t.Errorf("run seconds = %g, want > 0", rec.seconds)
	}
}

// TestRecorderDoesNotPerturbSearch proves telemetry is an observer: for a
// fixed seed the Result is bit-identical with and without a Recorder.
func TestRecorderDoesNotPerturbSearch(t *testing.T) {
	p := smallInstance(t, 5, 2)
	cfg := quickConfig()
	cfg.Iterations = 400
	plain, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = newCountingRecorder()
	instrumented, err := New(cfg).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plain.Objective) != math.Float64bits(instrumented.Objective) {
		t.Fatalf("objective diverged: %v vs %v", plain.Objective, instrumented.Objective)
	}
	if plain.Accepted != instrumented.Accepted || plain.MovedShards != instrumented.MovedShards {
		t.Fatalf("trajectory diverged: %+v vs %+v",
			[2]int{plain.Accepted, plain.MovedShards}, [2]int{instrumented.Accepted, instrumented.MovedShards})
	}
}

// TestRecorderParallelRestarts checks that SolveParallel flushes once per
// restart and the obs.SolverRecorder implementation is race-free under it
// (meaningful with -race).
func TestRecorderParallelRestarts(t *testing.T) {
	p := smallInstance(t, 7, 2)
	cfg := quickConfig()
	cfg.Iterations = 200
	reg := obs.NewRegistry()
	cfg.Recorder = obs.NewSolverRecorder(reg)
	const restarts = 4
	if _, err := New(cfg).SolveParallel(p, restarts); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rex_solver_runs_total 4\n") {
		t.Fatalf("expected 4 recorded runs:\n%s", out)
	}
	if !strings.Contains(out, "rex_solver_iterations_total{") {
		t.Fatalf("missing per-operator iteration counters:\n%s", out)
	}
	if problems := obs.LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("solver metrics fail lint: %v", problems)
	}
}

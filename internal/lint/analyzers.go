package lint

import "strings"

// Analyzers returns the rexlint suite with each analyzer scoped to the
// packages of the module (modPath) where its contract applies:
//
//   - noglobalrand guards the whole module: reproducibility is a global
//     property and one stray global draw anywhere breaks it.
//   - maporder guards the solver, planner, cluster model, and simulator —
//     the packages whose outputs must be bit-reproducible for a fixed seed.
//   - floateq guards objective/metrics/aggregate code, where quantities are
//     computed incrementally and exact comparison is a latent bug.
//   - errignore guards every internal package.
//   - metricname guards the whole module: any package may register metrics
//     on an obs.Registry and the exposition contract is global.
//   - lockcheck guards the whole module: guarded-by annotations are opt-in
//     per field, so un-annotated packages cost nothing.
//   - statecheck guards the whole module: it activates only in packages
//     that declare transition/resource directives.
//   - clockpurity guards the deterministic packages (core, sim, ctl, obs,
//     des): wall time must enter through the ctl.Clock seam only.
//   - leakcheck guards the long-running control plane (ctl and the
//     commands), where an unstoppable goroutine defeats shutdown.
//   - sharecheck guards the packages that handle cluster.Placement and the
//     partition views built on it (core, cluster, ctl, sim): the
//     single-owner contract the partitioned parallel solver depends on.
//   - alloccheck and purity guard the whole module: both activate only on
//     functions that opt in via //rexlint:noalloc / //rexlint:pure, so
//     un-annotated packages cost nothing.
//   - streamflow guards the whole module: RNG stream isolation is a global
//     property and the taint follows values across package boundaries.
//   - detflow guards the deterministic-output packages (obs, des, ctl),
//     where journal writes, expositions, and reports must be
//     byte-reproducible.
//   - nonneg guards the whole module: it activates only on fields annotated
//     //rexlint:nonneg, so un-annotated packages cost nothing.
//
// The scope lives here, in the driver policy, rather than inside the
// analyzers, so the test harness can exercise each analyzer on fixtures
// regardless of import path.
func Analyzers(modPath string) []*Analyzer {
	inModule := func(suffixes ...string) func(string) bool {
		return func(pkgPath string) bool {
			for _, s := range suffixes {
				if pkgPath == modPath+s || strings.HasPrefix(pkgPath, modPath+s+"/") {
					return true
				}
			}
			return false
		}
	}

	noGlobalRand := *NoGlobalRand
	noGlobalRand.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	mapOrder := *MapOrder
	mapOrder.AppliesTo = inModule(
		"/internal/core", "/internal/plan", "/internal/cluster", "/internal/sim",
		"/internal/des",
	)

	floatEq := *FloatEq
	floatEq.AppliesTo = inModule(
		"/internal/core", "/internal/plan", "/internal/cluster", "/internal/sim",
		"/internal/metrics", "/internal/stats", "/internal/vec", "/internal/des",
	)

	errIgnore := *ErrIgnore
	errIgnore.AppliesTo = inModule("/internal")

	metricName := *MetricName
	metricName.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	lockCheck := *LockCheck
	lockCheck.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	stateCheck := *StateCheck
	stateCheck.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	clockPurity := *ClockPurity
	clockPurity.AppliesTo = inModule(
		"/internal/core", "/internal/sim", "/internal/ctl", "/internal/obs",
		"/internal/des",
	)

	leakCheck := *LeakCheck
	leakCheck.AppliesTo = inModule("/internal/ctl", "/cmd")

	shareCheck := *ShareCheck
	shareCheck.AppliesTo = inModule(
		"/internal/core", "/internal/cluster", "/internal/ctl", "/internal/sim",
	)

	allocCheck := *AllocCheck
	allocCheck.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	purity := *Purity
	purity.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	streamFlow := *StreamFlow
	streamFlow.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	detFlow := *DetFlow
	detFlow.AppliesTo = inModule(
		"/internal/obs", "/internal/des", "/internal/ctl",
	)

	nonNeg := *NonNeg
	nonNeg.AppliesTo = func(pkgPath string) bool {
		return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
	}

	return []*Analyzer{
		&noGlobalRand, &mapOrder, &floatEq, &errIgnore, &metricName,
		&lockCheck, &stateCheck, &clockPurity, &leakCheck,
		&shareCheck, &allocCheck, &purity,
		&streamFlow, &detFlow, &nonNeg,
	}
}

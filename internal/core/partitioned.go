package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rexchange/internal/cluster"
	"rexchange/internal/metrics"
	"rexchange/internal/plan"
	"rexchange/internal/rng"
)

// This file implements the partitioned parallel solver: the fleet is
// factored into resource-equivalence partitions (cluster.PartitionByShape,
// after the authors' 2021 follow-up "Resource Equivalence Classes"), each
// partition is projected into an owned cluster.PlacementView and solved
// concurrently by an independent SRA instance on a proportional slice of
// the global iteration budget, and a deterministic cross-partition exchange
// phase trades shards and vacant machines from the hottest partition toward
// the coolest before the affected partitions are re-solved.
//
// Two properties make this more than a concurrency trick:
//
//   - Budget splitting: each partition receives Iterations·shards_i/shards
//     iterations, and one LNS iteration on a partition costs O(|partition|)
//     instead of O(|fleet|) (destroy/repair scan machines). The partitioned
//     solve therefore does ~P× less work per global budget — an algorithmic
//     speedup that holds even on a single core; worker concurrency stacks
//     on top on multi-core hosts.
//   - Determinism: partition seeds derive from (Seed, round, partition) via
//     splitmix64, results are slotted by partition index, views are applied
//     in index order, and the exchange phase is sequential with exact
//     tie-breaks — so the result is bit-identical across GOMAXPROCS.

// PartitionConfig parameterizes SolvePartitioned.
type PartitionConfig struct {
	// Partitions is the target partition count handed to
	// cluster.PartitionByShape. <= 1 (or a fleet that factors into a
	// single class) falls back to the whole-cluster Solve, which the
	// partition-closed golden test pins as bit-identical.
	Partitions int
	// MinMachines is the smallest acceptable partition (PartitionByShape
	// merges smaller classes); it also floors donor partitions in the
	// exchange phase so no partition is traded down to nothing. <= 0
	// defaults to 2.
	MinMachines int
	// ExchangeRounds bounds the cross-partition exchange phases. Each
	// round re-solves only the partitions the exchange touched. 0 solves
	// every partition once and stops.
	ExchangeRounds int
	// OffloadPerRound caps the shards traded from the hottest partition's
	// peak machine to the coolest partition per exchange. <= 0 defaults
	// to 8.
	OffloadPerRound int
	// VacantPerRound caps the vacant machines re-homed into the hottest
	// partition per exchange. <= 0 defaults to 1.
	VacantPerRound int
	// MinIterations floors each partition's iteration slice so tiny
	// partitions still search. <= 0 defaults to 50.
	MinIterations int

	// failPartition (tests only) injects a solve failure in the 1-based
	// partition with that index on the first round, to exercise the
	// degraded path; 0 disables. Mirrors Config.refKernel's pattern.
	failPartition int
}

// DefaultPartitionConfig returns the partitioned-solver settings used by
// the control plane and the F4 experiment.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		Partitions:      8,
		ExchangeRounds:  2,
		OffloadPerRound: 8,
		VacantPerRound:  1,
		MinIterations:   50,
	}
}

// normalize applies the documented defaults.
func (pc *PartitionConfig) normalize() {
	if pc.MinMachines <= 0 {
		pc.MinMachines = 2
	}
	if pc.OffloadPerRound <= 0 {
		pc.OffloadPerRound = 8
	}
	if pc.VacantPerRound <= 0 {
		pc.VacantPerRound = 1
	}
	if pc.MinIterations <= 0 {
		pc.MinIterations = 50
	}
	if pc.ExchangeRounds < 0 {
		pc.ExchangeRounds = 0
	}
}

// PartitionRecorder is an optional extension of Recorder: a Recorder that
// also implements it receives per-round partitioned-solve telemetry. The
// solver discovers it by type assertion so plain Recorders keep working
// unchanged. Implementations must be safe for concurrent use with the
// Recorder methods (partition sub-solves flush concurrently), though the
// PartitionRecorder methods themselves are only called from the
// coordinating goroutine.
type PartitionRecorder interface {
	Recorder
	// RecordPartitionRound reports one solve round: the partition count,
	// how many partitions were (re-)solved, and the global objective
	// after applying their results.
	RecordPartitionRound(partitions, solved int, objective float64)
	// RecordExchange reports one cross-partition exchange phase's trades.
	RecordExchange(shardMoves, vacantTrades int)
}

// exchangeGainEps is the relative peak-utilization gap below which the
// exchange phase considers partitions balanced and stops trading.
const exchangeGainEps = 0.01

// SolvePartitioned rebalances the placement by solving resource-equivalence
// partitions concurrently and reconciling them with a bounded number of
// cross-partition exchange rounds. The input placement is never modified —
// all work happens on a clone, so a failed run leaves p untouched. When the
// fleet factors into a single partition the call is exactly sv.Solve(p).
//
// A partition whose sub-solve fails is left at its pre-round placement and
// counted in Result.FailedPartitions; an error is returned only when the
// first round produces no successful partition at all.
func (sv *Solver) SolvePartitioned(p *cluster.Placement, pc PartitionConfig) (*Result, error) {
	pc.normalize()
	cfg := sv.cfg
	k, err := cfg.validate(p)
	if err != nil {
		return nil, err
	}
	parts := cluster.PartitionByShape(p.Cluster(), cluster.PartitionOptions{
		Target:      pc.Partitions,
		MinMachines: pc.MinMachines,
	})
	if len(parts) <= 1 {
		return sv.Solve(p)
	}
	if cluster.DebugAsserts {
		if err := cluster.CheckPartition(p.Cluster(), parts); err != nil {
			panic("core: SolvePartitioned: " + err.Error())
		}
	}

	work := p.Clone()
	initial := p.Assignment()
	totalShards := p.Cluster().NumShards()
	kByPart := splitReturnCount(work, parts, k)

	// improving mirrors state.improving: every placement that lowered the
	// global objective, in discovery order, so the final plan compilation
	// can fall back to an earlier solution. Index 0 is the initial
	// placement (the identity reassignment always plans).
	improving := []*cluster.Placement{p.Clone()}
	bestObj := objective(work, cfg.SpreadWeight, cfg.MovePenalty, initial)

	var iterations, accepted, repairFailures, planFallbacks, failedParts int
	prec, hasPRec := cfg.Recorder.(PartitionRecorder)

	dirty := make([]int, len(parts))
	for i := range dirty {
		dirty[i] = i
	}
	for round := 0; ; round++ {
		views := make([]*cluster.PlacementView, len(parts))
		for _, pi := range dirty {
			v, err := cluster.NewPlacementView(work, parts[pi])
			if err != nil {
				return nil, fmt.Errorf("core: partition %d view: %w", pi, err)
			}
			if cluster.DebugAsserts {
				if err := v.CheckProjection(work); err != nil {
					panic("core: SolvePartitioned: " + err.Error())
				}
			}
			views[pi] = v
		}

		results := make([]outcome, len(parts))
		var wg sync.WaitGroup
		// Cap concurrency at GOMAXPROCS (a pure throughput knob, like
		// SolveParallel's worker cap: it never influences which searches
		// run or which results win).
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, pi := range dirty {
			v := views[pi]
			if v.NumShards() == 0 {
				continue // nothing to rebalance; leave results[pi] zero
			}
			wg.Add(1)
			//rexlint:transfer each view is owned by exactly one goroutine; partitions share no machines or shards
			go func(round, pi int, v *cluster.PlacementView) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if round == 0 && pc.failPartition == pi+1 {
					results[pi] = outcome{nil, fmt.Errorf("core: injected failure in partition %d", pi)}
					return
				}
				pcfg := cfg
				pcfg.Seed = rng.CellSeed(cfg.Seed, round, pi)
				pcfg.Iterations = sliceIterations(cfg.Iterations, v.NumShards(), totalShards, pc.MinIterations)
				pcfg.ReturnCount = kByPart[pi]
				pcfg.KeepTrajectory = false
				res, err := New(pcfg).Solve(v.Sub())
				results[pi] = outcome{res, err}
			}(round, pi, v)
		}
		wg.Wait()

		// Apply in ascending partition index order — deterministic and,
		// because partitions are disjoint, order-independent in effect.
		solved := 0
		for _, pi := range dirty {
			o := results[pi]
			if o.err != nil {
				failedParts++
				continue // partition keeps its pre-round placement
			}
			if o.res == nil {
				continue // zero-shard partition, never solved
			}
			if err := views[pi].Apply(work, o.res.Final); err != nil {
				return nil, fmt.Errorf("core: partition %d apply: %w", pi, err)
			}
			iterations += o.res.Iterations
			accepted += o.res.Accepted
			repairFailures += o.res.RepairFailures
			solved++
		}
		if round == 0 && solved == 0 && failedParts > 0 {
			return nil, fmt.Errorf("core: all %d solved partitions failed", failedParts)
		}
		if cluster.DebugAsserts {
			work.MustInvariants("SolvePartitioned apply")
		}

		obj := objective(work, cfg.SpreadWeight, cfg.MovePenalty, initial)
		if hasPRec {
			prec.RecordPartitionRound(len(parts), solved, obj)
		}
		if obj < bestObj-1e-12 {
			bestObj = obj
			improving = append(improving, work.Clone())
		}
		if round >= pc.ExchangeRounds {
			break
		}

		ex := exchangePhase(work, parts, kByPart, pc)
		if hasPRec {
			prec.RecordExchange(ex.shardMoves, ex.vacantTrades)
		}
		if len(ex.dirty) == 0 {
			break
		}
		if cluster.DebugAsserts {
			if err := cluster.CheckPartition(work.Cluster(), parts); err != nil {
				panic("core: SolvePartitioned exchange: " + err.Error())
			}
			work.MustInvariants("SolvePartitioned exchange")
		}
		dirty = ex.dirty
	}

	// Compile the best reassignment into a move schedule, falling back to
	// earlier improving solutions exactly like state.finish.
	var final *cluster.Placement
	var schedule *plan.Plan
	for i := len(improving) - 1; i >= 0; i-- {
		pl, err := cfg.Planner.Build(p, improving[i])
		if err == nil {
			final = improving[i]
			schedule = pl
			break
		}
		planFallbacks++
	}
	if final == nil {
		return nil, errIdentityPlan
	}
	return &Result{
		Final:            final,
		Plan:             schedule,
		Returned:         pickReturned(final, k),
		Before:           metrics.Compute(p),
		After:            metrics.Compute(final),
		Objective:        objective(final, cfg.SpreadWeight, cfg.MovePenalty, initial),
		MovedShards:      movedCount(final, initial),
		Iterations:       iterations,
		Accepted:         accepted,
		RepairFailures:   repairFailures,
		PlanFallbacks:    planFallbacks,
		FailedPartitions: failedParts,
	}, nil
}

// Sub-solver seeds for (round, partition) cells come from rng.CellSeed:
// chained splitmix64 steps — the same construction as rng.WorkerSeed,
// extended to two indices so no two cells collide structurally.
// TestCellSeedMatchesLegacyPartitionSeed in internal/rng pins the exact
// bit pattern so the extraction cannot shift solver trajectories.

// sliceIterations splits the global iteration budget proportionally to the
// partition's shard share, floored so small partitions still search.
func sliceIterations(total, partShards, totalShards, floor int) int {
	it := floor
	if totalShards > 0 {
		if prop := int(int64(total) * int64(partShards) / int64(totalShards)); prop > it {
			it = prop
		}
	}
	return it
}

// splitReturnCount distributes the global return obligation K over the
// partitions proportionally to their current vacancy (largest-remainder
// rounding, ties to the lower index), with every share capped by the
// partition's own vacancy. Because each partition solve preserves its local
// k_i vacancy floor and the exchange phase never spends a donor below it,
// the per-partition contracts sum back to the global one: the fleet always
// retains at least K vacant machines to hand back.
func splitReturnCount(p *cluster.Placement, parts [][]cluster.MachineID, k int) []int {
	ks := make([]int, len(parts))
	if k == 0 {
		return ks
	}
	partOf := partIndex(p.Cluster(), parts)
	vac := make([]int, len(parts))
	total := 0
	p.EachVacant(func(m cluster.MachineID) {
		vac[partOf[m]]++
		total++
	})
	// validate guaranteed total >= k.
	assigned := 0
	rem := make([]int64, len(parts))
	for i := range parts {
		share := int64(k) * int64(vac[i])
		ks[i] = int(share / int64(total))
		rem[i] = share % int64(total)
		assigned += ks[i]
	}
	for assigned < k {
		best := -1
		for i := range parts {
			if rem[i] < 0 {
				continue
			}
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		ks[best]++ // rem[best] > 0 here, so ks[best] < vac[best] held before the increment
		rem[best] = -1
		assigned++
	}
	return ks
}

// partIndex maps every machine to its partition's index.
func partIndex(c *cluster.Cluster, parts [][]cluster.MachineID) []int {
	partOf := make([]int, c.NumMachines())
	for pi, part := range parts {
		for _, m := range part {
			partOf[m] = pi
		}
	}
	return partOf
}

// exchangeOutcome summarizes one exchange phase.
type exchangeOutcome struct {
	dirty        []int // partitions to re-solve, ascending
	shardMoves   int
	vacantTrades int
}

// exchangePhase performs the paper's resource exchange across partitions:
// the partition with the highest peak utilization receives spare vacant
// machines re-homed from the partition with the most vacancy headroom, and
// sheds shards from its peak machine onto the coolest partition's machines
// wherever that strictly undercuts the hot peak. Mutates work (shard moves)
// and parts (machine membership) in place; every trade respects the
// per-partition vacancy floors in kByPart, so the global return contract
// survives. Entirely sequential and tie-broken on IDs — deterministic.
func exchangePhase(work *cluster.Placement, parts [][]cluster.MachineID, kByPart []int, pc PartitionConfig) exchangeOutcome {
	c := work.Cluster()
	partOf := partIndex(c, parts)

	peak := make([]float64, len(parts))
	peakM := make([]cluster.MachineID, len(parts))
	for pi := range peakM {
		peakM[pi] = cluster.Unassigned
	}
	for pi, part := range parts {
		for _, m := range part {
			if work.IsVacant(m) {
				continue
			}
			if u := work.Load(m) / c.Machines[m].Speed; u > peak[pi] {
				peak[pi] = u
				peakM[pi] = m
			}
		}
	}
	vac := make([]int, len(parts))
	work.EachVacant(func(m cluster.MachineID) { vac[partOf[m]]++ })

	hot, cool := -1, -1
	for pi := range parts {
		if peakM[pi] == cluster.Unassigned {
			continue // an all-vacant partition has nothing to shed
		}
		if hot < 0 || peak[pi] > peak[hot] {
			hot = pi
		}
	}
	if hot < 0 {
		return exchangeOutcome{}
	}
	for pi := range parts {
		if pi == hot {
			continue
		}
		if cool < 0 || peak[pi] < peak[cool] {
			cool = pi
		}
	}
	if cool < 0 || peak[hot]-peak[cool] <= exchangeGainEps*peak[hot] {
		return exchangeOutcome{} // partitions already balanced
	}

	dirtyFlag := make([]bool, len(parts))
	out := exchangeOutcome{}

	// Vacant-machine trade: re-home spare vacant machines into the hot
	// partition so its next solve can spread onto them. Donors must keep
	// their k_i floor, their partition floor, and are picked by headroom
	// (ties to the lower index); the machine picked is the donor's fastest
	// vacant one (ties to the lower ID) — the most serving value moved per
	// trade.
	for t := 0; t < pc.VacantPerRound; t++ {
		donor := -1
		for pi := range parts {
			if pi == hot || len(parts[pi]) <= pc.MinMachines {
				continue
			}
			if vac[pi]-kByPart[pi] <= 0 {
				continue
			}
			if donor < 0 || vac[pi]-kByPart[pi] > vac[donor]-kByPart[donor] {
				donor = pi
			}
		}
		if donor < 0 {
			break
		}
		pick := cluster.Unassigned
		for _, m := range parts[donor] {
			if !work.IsVacant(m) {
				continue
			}
			if pick == cluster.Unassigned || c.Machines[m].Speed > c.Machines[pick].Speed {
				pick = m
			}
		}
		if pick == cluster.Unassigned {
			break
		}
		parts[donor] = removeMachine(parts[donor], pick)
		parts[hot] = insertMachine(parts[hot], pick)
		partOf[pick] = hot
		vac[donor]--
		vac[hot]++
		dirtyFlag[donor] = true
		dirtyFlag[hot] = true
		out.vacantTrades++
	}

	// Shard offload: move the heaviest shards off the hot partition's peak
	// machine onto the coolest partition wherever the landing utilization
	// strictly undercuts the hot peak, respecting the cool partition's
	// vacancy floor.
	if hm := peakM[hot]; hm != cluster.Unassigned {
		shards := append([]cluster.ShardID(nil), work.ShardsOn(hm)...)
		sort.Slice(shards, func(i, j int) bool {
			a, b := &c.Shards[shards[i]], &c.Shards[shards[j]]
			if a.Load != b.Load {
				return a.Load > b.Load
			}
			return shards[i] < shards[j]
		})
		for _, s := range shards {
			if out.shardMoves >= pc.OffloadPerRound {
				break
			}
			target := cluster.Unassigned
			bestU := peak[hot]
			for _, m := range parts[cool] {
				if !work.CanPlace(s, m) {
					continue
				}
				if work.IsVacant(m) && vac[cool] <= kByPart[cool] {
					continue // spending this machine would break the return contract
				}
				if u := (work.Load(m) + c.Shards[s].Load) / c.Machines[m].Speed; u < bestU-1e-12 {
					target = m
					bestU = u
				}
			}
			if target == cluster.Unassigned {
				continue
			}
			if work.IsVacant(target) {
				vac[cool]--
			}
			work.Move(s, target)
			dirtyFlag[hot] = true
			dirtyFlag[cool] = true
			out.shardMoves++
		}
	}

	for pi, d := range dirtyFlag {
		if d {
			out.dirty = append(out.dirty, pi)
		}
	}
	return out
}

// removeMachine deletes m from an ascending machine list, preserving order.
func removeMachine(part []cluster.MachineID, m cluster.MachineID) []cluster.MachineID {
	i := sort.Search(len(part), func(i int) bool { return part[i] >= m })
	return append(part[:i], part[i+1:]...)
}

// insertMachine inserts m into an ascending machine list, preserving order.
func insertMachine(part []cluster.MachineID, m cluster.MachineID) []cluster.MachineID {
	i := sort.Search(len(part), func(i int) bool { return part[i] >= m })
	part = append(part, 0)
	copy(part[i+1:], part[i:])
	part[i] = m
	return part
}

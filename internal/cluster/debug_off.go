//go:build !debugasserts

package cluster

// DebugAsserts is false in default builds; see debug_on.go.
const DebugAsserts = false

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rexchange/internal/obs"
	"rexchange/internal/workload"
)

// buildBinaries compiles rexd and rebalance into dir and returns their
// paths. The test drives the real binaries end to end: generated placement
// → offline plan (-plan-out) → online replay (-plan-in), and the virtual
// controller loop that the CI smoke step runs.
func buildBinaries(t *testing.T, dir string) (rexd, rebalance string) {
	t.Helper()
	rexd = filepath.Join(dir, "rexd")
	rebalance = filepath.Join(dir, "rebalance")
	for bin, pkg := range map[string]string{rexd: "rexchange/cmd/rexd", rebalance: "rexchange/cmd/rebalance"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return rexd, rebalance
}

// writeInstance saves a small generated placement and trace for the CLI.
func writeInstance(t *testing.T, dir string) (placement, trace string) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Machines = 30
	cfg.Shards = 300
	cfg.Seed = 4
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placement = filepath.Join(dir, "placement.json")
	if err := inst.Placement.SaveFile(placement); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: 30, BaseRate: 50, DiurnalAmp: 0.5, Period: 30, CostSigma: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace = filepath.Join(dir, "trace.csv")
	if err := tr.SaveFile(trace); err != nil {
		t.Fatal(err)
	}
	return placement, trace
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestRexdVirtualReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, _ := buildBinaries(t, dir)
	placement, trace := writeInstance(t, dir)

	out := runCmd(t, rexd,
		"-in", placement, "-virtual", "-replay", trace,
		"-rounds", "3", "-window", "10", "-iters", "200", "-restarts", "1")
	if !strings.Contains(out, "final imbalance=") {
		t.Fatalf("missing final imbalance line:\n%s", out)
	}
	if !strings.Contains(out, "round   0") {
		t.Fatalf("missing per-round progress:\n%s", out)
	}
}

func TestRexdPlanReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, rebalance := buildBinaries(t, dir)
	placement, _ := writeInstance(t, dir)
	planPath := filepath.Join(dir, "plan.json")

	out := runCmd(t, rebalance,
		"-in", placement, "-k", "0", "-iters", "300", "-plan-out", planPath)
	if !strings.Contains(out, "plan → ") {
		t.Fatalf("rebalance did not report the plan file:\n%s", out)
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatal(err)
	}

	out = runCmd(t, rexd,
		"-in", placement, "-plan-in", planPath, "-virtual", "-bandwidth", "500", "-inflight", "8")
	if !strings.Contains(out, "plan executed:") || !strings.Contains(out, "final imbalance=") {
		t.Fatalf("plan replay output unexpected:\n%s", out)
	}
}

func TestRexdEventsAndMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, _ := buildBinaries(t, dir)
	placement, trace := writeInstance(t, dir)
	events := filepath.Join(dir, "run.jsonl")
	metricsOut := filepath.Join(dir, "metrics.prom")

	run := func(path string) []obs.Event {
		out := runCmd(t, rexd,
			"-in", placement, "-virtual", "-replay", trace,
			"-rounds", "3", "-window", "10", "-iters", "200", "-restarts", "1",
			"-events", path, "-metrics-out", metricsOut)
		if !strings.Contains(out, "journal events → ") {
			t.Fatalf("missing journal summary line:\n%s", out)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		evs, err := obs.ReadJournal(f)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}

	evs := run(events)
	roundBegins := 0
	for _, ev := range evs {
		if ev.Span == obs.SpanRound && ev.Phase == obs.PhaseBegin {
			roundBegins++
		}
	}
	if roundBegins != 3 {
		t.Fatalf("want 3 round-begin events, got %d of %d total", roundBegins, len(evs))
	}

	// The exposition must pass the linter and carry the core families.
	raw, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	problems := obs.LintExposition(bytes.NewReader(raw),
		"rex_ctl_rounds_total", "rex_exec_dispatched_total",
		"rex_solver_runs_total", "rex_imbalance", "rex_serving")
	if len(problems) > 0 {
		t.Fatalf("metrics lint problems: %v", problems)
	}

	// Same config again → byte-identical journal (virtual clock).
	events2 := filepath.Join(dir, "run2.jsonl")
	run(events2)
	a, _ := os.ReadFile(events)
	b, _ := os.ReadFile(events2)
	if !bytes.Equal(a, b) {
		t.Fatal("journal not reproducible across identical virtual-clock runs")
	}
}

func TestRexdPlanReplayEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, rebalance := buildBinaries(t, dir)
	placement, _ := writeInstance(t, dir)
	planPath := filepath.Join(dir, "plan.json")
	events := filepath.Join(dir, "replay.jsonl")

	runCmd(t, rebalance, "-in", placement, "-k", "0", "-iters", "300", "-plan-out", planPath)
	out := runCmd(t, rexd,
		"-in", placement, "-plan-in", planPath, "-virtual",
		"-bandwidth", "500", "-inflight", "8", "-events", events)
	if !strings.Contains(out, "plan executed:") {
		t.Fatalf("plan replay output unexpected:\n%s", out)
	}
	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	begins, ends := 0, 0
	for _, ev := range evs {
		if ev.Span != obs.SpanMove {
			t.Fatalf("plan replay journal should only hold move spans, got %q", ev.Span)
		}
		if ev.Move == nil {
			t.Fatalf("move span without move payload: %+v", ev)
		}
		switch ev.Phase {
		case obs.PhaseBegin:
			begins++
		case obs.PhaseEnd:
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced move spans: %d begins, %d ends", begins, ends)
	}
}

func TestRexdInjectedFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	rexd, _ := buildBinaries(t, dir)
	placement, trace := writeInstance(t, dir)

	out := runCmd(t, rexd,
		"-in", placement, "-virtual", "-replay", trace,
		"-rounds", "3", "-iters", "200", "-restarts", "1", "-fail-rate", "0.2")
	if !strings.Contains(out, "final imbalance=") {
		t.Fatalf("run with failures did not complete:\n%s", out)
	}
}

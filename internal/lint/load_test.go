package lint_test

import (
	"go/constant"
	"go/types"
	"testing"

	"rexchange/internal/lint/linttest"
)

// debugAssertsValue loads rexchange/internal/cluster under the given build
// tags and returns the value of its DebugAsserts constant.
func debugAssertsValue(t *testing.T, tags []string) bool {
	t.Helper()
	loader := linttest.NewLoader(t)
	if tags != nil {
		loader.SetBuildTags(tags)
	}
	pkgs, err := loader.Load([]string{"./internal/cluster"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	obj := pkgs[0].Types.Scope().Lookup("DebugAsserts")
	c, ok := obj.(*types.Const)
	if !ok {
		t.Fatalf("DebugAsserts = %v, want a constant", obj)
	}
	return constant.BoolVal(c.Val())
}

// TestStdCacheKeyedByBuildTags is the regression test for the shared
// stdlib typecheck cache: loaders running under different build tag sets
// must not share cached facts. Before the cache was keyed by tags, a
// default-tags run poisoned the cache for a subsequent -tags debugasserts
// run (and vice versa), so whichever tag set ran second saw the other's
// file selection.
func TestStdCacheKeyedByBuildTags(t *testing.T) {
	// Order matters for the regression: default first primes the caches,
	// then the tagged run must still see its own file selection.
	if got := debugAssertsValue(t, nil); got {
		t.Fatal("default build: DebugAsserts = true, want false")
	}
	if got := debugAssertsValue(t, []string{"debugasserts"}); !got {
		t.Fatal("-tags debugasserts: DebugAsserts = false, want true")
	}
	// And the default cache was not poisoned by the tagged run either.
	if got := debugAssertsValue(t, nil); got {
		t.Fatal("default build after tagged run: DebugAsserts = true, want false")
	}
}

// TestStdCacheSharedWithinTagSet pins that equal tag sets share one stdlib
// cache regardless of tag order: repeated runs reuse the same typechecked
// std packages (identity, not just equality), which is what keeps whole-
// module rexlint runs inside the wall-time budget.
func TestStdCacheSharedWithinTagSet(t *testing.T) {
	a := linttest.NewLoader(t)
	a.SetBuildTags([]string{"x", "debugasserts"})
	b := linttest.NewLoader(t)
	b.SetBuildTags([]string{"debugasserts", "x"})

	pa, err := a.Import("sort")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Import("sort")
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Error("same tag set (reordered) did not share the stdlib cache")
	}

	c := linttest.NewLoader(t)
	pc, err := c.Import("sort")
	if err != nil {
		t.Fatal(err)
	}
	if pc == pa {
		t.Error("different tag sets shared one stdlib cache")
	}
}

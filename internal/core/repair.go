package core

import (
	"math"
	"sort"

	"rexchange/internal/cluster"
)

// canInsert reports whether shard s may be placed on machine m: static
// capacity must hold, and — the resource-exchange contract — occupying a
// currently vacant machine is allowed only while more than K machines are
// vacant, so that K can still be returned.
func (st *state) canInsert(s cluster.ShardID, m cluster.MachineID) bool {
	if st.cur.IsVacant(m) && st.cur.NumVacant() <= st.k {
		return false
	}
	return st.cur.CanPlace(s, m)
}

// insertCost is the utilization machine m would reach after hosting s —
// the greedy criterion that directly minimizes the makespan objective.
func (st *state) insertCost(s cluster.ShardID, m cluster.MachineID) float64 {
	c := st.cur.Cluster()
	return (st.cur.Load(m) + c.Shards[s].Load) / c.Machines[m].Speed
}

// bestMachineFor scans all machines for the cheapest feasible insertion of
// s, breaking cost ties toward the machine with more static slack (to keep
// future insertions feasible). Returns Unassigned when nothing fits.
func (st *state) bestMachineFor(s cluster.ShardID) (cluster.MachineID, float64) {
	c := st.cur.Cluster()
	best := cluster.Unassigned
	bestCost := math.Inf(1)
	bestSlack := -1.0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if !st.canInsert(s, id) {
			continue
		}
		cost := st.insertCost(s, id)
		if cost < bestCost-1e-12 {
			best, bestCost = id, cost
			bestSlack = st.cur.Free(id).MaxDim()
		} else if cost <= bestCost+1e-12 {
			if slack := st.cur.Free(id).MaxDim(); slack > bestSlack {
				best, bestSlack = id, slack
			}
		}
	}
	return best, bestCost
}

// repairGreedy inserts the pool hardest-first (largest load, then largest
// static footprint) at each shard's cheapest feasible machine. Returns
// false when some shard fits nowhere (caller restores the snapshot).
func (st *state) repairGreedy() bool {
	c := st.cur.Cluster()
	sort.Slice(st.pool, func(i, j int) bool {
		a, b := &c.Shards[st.pool[i]], &c.Shards[st.pool[j]]
		if a.Load != b.Load {
			return a.Load > b.Load
		}
		if am, bm := a.Static.MaxDim(), b.Static.MaxDim(); am != bm {
			return am > bm
		}
		return st.pool[i] < st.pool[j]
	})
	for _, s := range st.pool {
		m, _ := st.bestMachineFor(s)
		if m == cluster.Unassigned {
			return false
		}
		if err := st.cur.Place(s, m); err != nil {
			return false
		}
	}
	return true
}

// repairRegret is regret-2 insertion: always commit the shard whose best
// option beats its second-best by the most (it has the most to lose by
// waiting). To keep the O(pool²·machines) cost in check on large fleets,
// each evaluation scans a candidate subset — the lowest-utilization
// machines plus random extras — and falls back to a full scan only when
// the subset yields nothing feasible.
func (st *state) repairRegret() bool {
	remaining := append([]cluster.ShardID(nil), st.pool...)
	for len(remaining) > 0 {
		cands := st.candidateMachines()
		bestIdx := -1
		var bestM cluster.MachineID
		bestRegret := -1.0
		bestCost := math.Inf(1)
		for i, s := range remaining {
			m1, m2 := cluster.Unassigned, cluster.Unassigned
			c1, c2 := math.Inf(1), math.Inf(1)
			consider := func(id cluster.MachineID) {
				if !st.canInsert(s, id) {
					return
				}
				cost := st.insertCost(s, id)
				switch {
				case cost < c1:
					m2, c2 = m1, c1
					m1, c1 = id, cost
				case cost < c2:
					m2, c2 = id, cost
				}
			}
			for _, id := range cands {
				consider(id)
			}
			if m1 == cluster.Unassigned {
				// candidate subset failed: full scan for this shard
				var full float64
				m1, full = st.bestMachineFor(s)
				if m1 == cluster.Unassigned {
					return false
				}
				c1 = full
				c2 = math.Inf(1)
			}
			_ = m2
			regret := c2 - c1
			if math.IsInf(regret, 1) {
				regret = 1e18 - c1 // single option: place before it disappears
			}
			if regret > bestRegret {
				bestIdx, bestM, bestRegret, bestCost = i, m1, regret, c1
			}
		}
		_ = bestCost
		if bestIdx < 0 {
			return false
		}
		s := remaining[bestIdx]
		if err := st.cur.Place(s, bestM); err != nil {
			return false
		}
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return true
}

// candidateMachines returns the insertion-candidate subset used by
// repairRegret: the 24 lowest-utilization machines plus 8 random ones (all
// machines when the fleet is small).
func (st *state) candidateMachines() []cluster.MachineID {
	c := st.cur.Cluster()
	n := c.NumMachines()
	const lowCount, randCount = 24, 8
	if n <= lowCount+randCount {
		all := make([]cluster.MachineID, n)
		for i := range all {
			all[i] = cluster.MachineID(i)
		}
		return all
	}
	ids := make([]cluster.MachineID, n)
	for i := range ids {
		ids[i] = cluster.MachineID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		ui, uj := st.cur.Utilization(ids[i]), st.cur.Utilization(ids[j])
		if ui != uj {
			return ui < uj
		}
		return ids[i] < ids[j]
	})
	out := append([]cluster.MachineID(nil), ids[:lowCount]...)
	for i := 0; i < randCount; i++ {
		out = append(out, ids[lowCount+st.rng.Intn(n-lowCount)])
	}
	return out
}

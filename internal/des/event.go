// Package des is a deterministic discrete-event cluster simulator with
// per-query tail-latency accounting. It models a partition-by-document
// search fleet at query granularity: each query arrival fans out to the
// machines hosting a sample of shards, waits in per-machine FIFO queues,
// is served at a rate set by the machine's speed (degraded while migration
// copies stream off it), and completes when its slowest leg merges.
//
// The simulator plugs into the online control plane unchanged: it
// implements ctl.Clock (the controller's Sleep advances the event heap),
// ctl.LoadSource (per-shard load observations are the work the simulator
// actually routed during the window), and ctl.MoveObserver (executor
// dispatches degrade the source machine mid-flight and commit reroutes).
// Everything is deterministic for a fixed seed: the event heap breaks
// timestamp ties by (kind, sequence number), all randomness flows through
// named rng.Partitioned sub-streams (workload, drift, chaos), and the
// single event loop runs on the control goroutine — so reports are
// byte-identical across runs and GOMAXPROCS values.
package des

// Kind discriminates event types. The numeric order is the documented
// tie-break order at equal timestamps: window boundaries fire before the
// arrivals they generated, and arrivals before any service completion at
// the same instant, so a queue observed by an arrival always reflects
// every completion due at that time.
type Kind uint8

// Event kinds, in tie-break order.
const (
	// KindWindow closes a measurement window, applies popularity drift,
	// and generates the next window's arrivals.
	KindWindow Kind = iota
	// KindArrival fans one query out to its shard legs.
	KindArrival
	// KindLegDone completes the leg at the head of machine M's queue.
	KindLegDone
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindWindow:
		return "window"
	case KindArrival:
		return "arrival"
	case KindLegDone:
		return "leg-done"
	default:
		return "kind(?)"
	}
}

// Event is one scheduled simulator event. Q indexes the simulator's query
// table for arrivals; M is the serving machine for leg completions. Seq is
// a global push counter that makes the heap order total: two events with
// equal (At, Kind) pop in push order.
type Event struct {
	At   float64
	Kind Kind
	Seq  uint64
	Q    int32
	M    int32
}

// before is the total heap order: time, then kind, then sequence.
func (e Event) before(o Event) bool {
	if e.At != o.At { //rexlint:ignore floateq exact-tie detection is the point: distinct floats order by time, bit-equal floats fall through to the kind/seq tie-break
		return e.At < o.At
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	return e.Seq < o.Seq
}

// eventHeap is a binary min-heap ordered by Event.before. It is a plain
// slice (no container/heap interface boxing): Push amortizes its growth
// and the pop path is provably allocation-free, which keeps the event
// loop — the simulator's innermost loop — off the garbage collector.
type eventHeap struct {
	ev  []Event
	seq uint64
}

// Len returns the number of pending events.
//
//rexlint:noalloc
func (h *eventHeap) Len() int { return len(h.ev) }

// Push schedules an event, stamping its sequence number.
func (h *eventHeap) Push(e Event) {
	e.Seq = h.seq
	h.seq++
	h.ev = append(h.ev, e)
	h.siftUp(len(h.ev) - 1)
}

// Min returns the earliest event without removing it. The heap must be
// non-empty.
//
//rexlint:noalloc
func (h *eventHeap) Min() Event { return h.ev[0] }

// Pop removes and returns the earliest event. The heap must be non-empty.
//
//rexlint:noalloc
func (h *eventHeap) Pop() Event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

// siftUp restores the heap property from leaf i toward the root.
//
//rexlint:noalloc
func (h *eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ev[i].before(h.ev[parent]) {
			return
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// siftDown restores the heap property from the root at i toward the
// leaves.
//
//rexlint:noalloc
func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.ev[right].before(h.ev[left]) {
			least = right
		}
		if !h.ev[least].before(h.ev[i]) {
			return
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
}

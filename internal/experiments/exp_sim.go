package experiments

import (
	"rexchange/internal/cluster"
	"rexchange/internal/core"
	"rexchange/internal/invindex"
	"rexchange/internal/sim"
	"rexchange/internal/workload"
)

// F5LatencySim builds a search cluster from real inverted-index shard
// profiles, simulates query serving before and after an SRA rebalance, and
// reports the latency distribution shift plus the cost of executing the
// migration itself.
func F5LatencySim(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F5",
		Title:   "Serving latency before vs after rebalancing (simulated cluster)",
		Columns: []string{"placement", "maxBusy", "meanBusy", "p50", "p95", "p99", "mean"},
	}

	// 1. corpus → sharded index → measured shard profiles
	corpusCfg := invindex.DefaultCorpusConfig()
	corpusCfg.Docs = sc.sel(1200, 8000)
	corpusCfg.Vocab = sc.sel(1500, 20000)
	docs, err := invindex.GenerateCorpus(corpusCfg)
	if err != nil {
		return nil, err
	}
	numShards := sc.sel(48, 240)
	si, err := invindex.BuildSharded(docs, numShards)
	if err != nil {
		return nil, err
	}
	queryCfg := invindex.DefaultQueryConfig()
	queryCfg.Vocab = corpusCfg.Vocab
	queryCfg.Queries = sc.sel(100, 400)
	queries, err := invindex.GenerateQueries(queryCfg)
	if err != nil {
		return nil, err
	}
	shards, err := si.ProfileShards(invindex.DefaultProfileConfig(queries))
	if err != nil {
		return nil, err
	}

	// 2. pack onto machines, borrow exchange machines, rebalance
	machines := sc.sel(8, 24)
	p, err := invindex.ClusterFromProfiles(shards, machines, 0.8, 801)
	if err != nil {
		return nil, err
	}
	pk, err := withExchange(p, 2)
	if err != nil {
		return nil, err
	}
	res, err := core.New(solverConfig(sc.sel(300, 2500), 23)).Solve(pk)
	if err != nil {
		return nil, err
	}

	// 3. simulate the same trace against both placements
	// Scale work so that the hottest machine of the initial placement sits
	// just below saturation — the regime where imbalance hurts tails.
	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: float64(sc.sel(20, 120)), BaseRate: 30,
		DiurnalAmp: 0.3, Period: 60, CostMu: 0, CostSigma: 0.4, Seed: 29,
	})
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{Cores: 4, WorkScale: 0.9 * 4 / (30 * res.Before.MaxUtil)}

	beforeRep, err := sim.Run(pk, trace, simCfg)
	if err != nil {
		return nil, err
	}
	afterRep, err := sim.Run(res.Final, trace, simCfg)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("initial", beforeRep.MaxBusy, beforeRep.MeanBusy,
		beforeRep.P50, beforeRep.P95, beforeRep.P99, beforeRep.MeanLatency)
	tbl.AddRow("rebalanced", afterRep.MaxBusy, afterRep.MeanBusy,
		afterRep.P50, afterRep.P95, afterRep.P99, afterRep.MeanLatency)

	// 4. migration cost of getting there (columns reused: the row label
	// names each cell in order)
	mig, err := sim.SimulateMigration(pk, res.Plan, sim.MigrationConfig{
		Bandwidth: 50, Concurrency: 4,
	})
	if err != nil {
		return nil, err
	}
	tbl.AddRow("migration[sec/moves/bytes/peak]", "-", "-",
		mig.Duration, float64(mig.Steps), mig.Bytes, float64(mig.PeakParallel))
	return tbl, nil
}

// F8ReplicaRouting extends F5 to replicated fleets: with every logical
// shard held by two replicas, how much tail latency do the query-routing
// policy and the rebalance each contribute?
func F8ReplicaRouting(sc Scale) (*Table, error) {
	tbl := &Table{
		ID:      "F8",
		Title:   "Replica routing × rebalancing (tail latency) — extension",
		Columns: []string{"placement", "routing", "maxBusy", "p50", "p95", "p99"},
	}
	gen := workload.DefaultConfig()
	gen.Machines = sc.sel(12, 40)
	gen.Shards = sc.sel(60, 300) // logical shards; ×2 replicas
	gen.Replicas = 2
	gen.TargetFill = 0.8
	gen.Seed = 1301
	inst, err := workload.Generate(gen)
	if err != nil {
		return nil, err
	}
	pk, err := withExchange(inst.Placement, 2)
	if err != nil {
		return nil, err
	}
	res, err := core.New(solverConfig(sc.sel(300, 2500), 43)).Solve(pk)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Duration: float64(sc.sel(20, 90)), BaseRate: 30,
		DiurnalAmp: 0.25, Period: 45, CostMu: 0, CostSigma: 0.4, Seed: 47,
	})
	if err != nil {
		return nil, err
	}
	workScale := 0.9 * 4 / (30 * res.Before.MaxUtil)
	for _, pl := range []struct {
		name string
		p    *cluster.Placement
	}{{"initial", pk}, {"rebalanced", res.Final}} {
		for _, routing := range []sim.Routing{sim.RouteStatic, sim.RouteRoundRobin, sim.RouteLeastLoaded} {
			rep, err := sim.Run(pl.p, trace, sim.Config{
				Cores: 4, WorkScale: workScale, Routing: routing,
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(pl.name, routing.String(), rep.MaxBusy, rep.P50, rep.P95, rep.P99)
		}
	}
	return tbl, nil
}

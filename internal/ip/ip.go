// Package ip encodes the paper's shard-reassignment problem as the linearly
// constrained integer program described in the abstract and solves it
// exactly by branch-and-bound over internal/lp's simplex relaxations. It is
// deliberately sized for the small instances of experiment T1, where it
// provides the optimality reference that SRA's quality gap is measured
// against.
//
// Variables (all implicitly ≥ 0):
//
//	x_{s,m} ∈ {0,1}  shard s placed on machine m
//	y_m     ∈ {0,1}  machine m ends vacant (returnable)
//	T       ≥ 0      normalized makespan
//
// minimize T subject to
//
//	Σ_m x_{s,m} = 1                        (every shard placed)
//	Σ_s r_s[d]·x_{s,m} ≤ C_m[d]            (static capacities, per resource)
//	Σ_s l_s·x_{s,m} − v_m·T ≤ 0            (T bounds every machine's util)
//	x_{s,m} + y_m ≤ 1                      (vacant machines host nothing)
//	Σ_m y_m ≥ K                            (K machines handed back)
package ip

import (
	"fmt"
	"math"

	"rexchange/internal/cluster"
	"rexchange/internal/lp"
	"rexchange/internal/vec"
)

// Model is the IP instance built from a cluster.
type Model struct {
	c *cluster.Cluster
	k int

	numX    int // S*M
	numVars int // x's + y's + T
	base    *lp.Problem
}

// BuildModel constructs the IP for cluster c with compensation count k.
func BuildModel(c *cluster.Cluster, k int) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s, m := c.NumShards(), c.NumMachines()
	if s == 0 || m == 0 {
		return nil, fmt.Errorf("ip: empty cluster (%d shards, %d machines)", s, m)
	}
	if k < 0 || k >= m {
		return nil, fmt.Errorf("ip: K=%d out of range for %d machines", k, m)
	}
	md := &Model{
		c:       c,
		k:       k,
		numX:    s * m,
		numVars: s*m + m + 1,
	}
	md.base = md.buildLP()
	return md, nil
}

// xIdx returns the column of x_{s,m}.
func (md *Model) xIdx(s, m int) int { return s*md.c.NumMachines() + m }

// yIdx returns the column of y_m.
func (md *Model) yIdx(m int) int { return md.numX + m }

// tIdx returns the column of T.
func (md *Model) tIdx() int { return md.numX + md.c.NumMachines() }

// buildLP assembles the relaxation shared by every node.
func (md *Model) buildLP() *lp.Problem {
	c := md.c
	S, M := c.NumShards(), c.NumMachines()
	p := lp.NewProblem(md.numVars)
	p.Objective[md.tIdx()] = 1

	// every shard placed exactly once
	for s := 0; s < S; s++ {
		co := make([]float64, md.numVars)
		for m := 0; m < M; m++ {
			co[md.xIdx(s, m)] = 1
		}
		p.AddConstraint(co, lp.EQ, 1)
	}
	// static capacities per machine and resource
	for m := 0; m < M; m++ {
		for d := 0; d < vec.NumResources; d++ {
			co := make([]float64, md.numVars)
			nonzero := false
			for s := 0; s < S; s++ {
				v := c.Shards[s].Static[d]
				co[md.xIdx(s, m)] = v
				if v != 0 {
					nonzero = true
				}
			}
			if nonzero {
				p.AddConstraint(co, lp.LE, c.Machines[m].Capacity[d])
			}
		}
	}
	// makespan links
	for m := 0; m < M; m++ {
		co := make([]float64, md.numVars)
		for s := 0; s < S; s++ {
			co[md.xIdx(s, m)] = c.Shards[s].Load
		}
		co[md.tIdx()] = -c.Machines[m].Speed
		p.AddConstraint(co, lp.LE, 0)
	}
	// vacancy links x_{s,m} + y_m ≤ 1
	for m := 0; m < M; m++ {
		for s := 0; s < S; s++ {
			co := make([]float64, md.numVars)
			co[md.xIdx(s, m)] = 1
			co[md.yIdx(m)] = 1
			p.AddConstraint(co, lp.LE, 1)
		}
	}
	// y_m ≤ 1
	for m := 0; m < M; m++ {
		co := make([]float64, md.numVars)
		co[md.yIdx(m)] = 1
		p.AddConstraint(co, lp.LE, 1)
	}
	// anti-affinity: replicas of one group never share a machine
	groups := map[int][]int{}
	for s := 0; s < S; s++ {
		if g := c.Shards[s].Group; g != 0 {
			groups[g] = append(groups[g], s)
		}
	}
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		for m := 0; m < M; m++ {
			co := make([]float64, md.numVars)
			for _, s := range members {
				co[md.xIdx(s, m)] = 1
			}
			p.AddConstraint(co, lp.LE, 1)
		}
	}
	// Σ y ≥ K
	if md.k > 0 {
		co := make([]float64, md.numVars)
		for m := 0; m < M; m++ {
			co[md.yIdx(m)] = 1
		}
		p.AddConstraint(co, lp.GE, float64(md.k))
	}
	return p
}

// Status reports the branch-and-bound outcome.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	NodeLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result is the outcome of an exact solve.
type Result struct {
	Status Status
	// Assignment is the optimal shard→machine mapping (Status == Optimal).
	Assignment []cluster.MachineID
	// Objective is the optimal makespan T.
	Objective float64
	// RootBound is the LP relaxation value at the root node.
	RootBound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Options bounds the search.
type Options struct {
	// MaxNodes caps explored nodes; 0 means 50000.
	MaxNodes int
	// IncumbentObj primes the upper bound (e.g. from an SRA solution);
	// 0 or negative means none.
	IncumbentObj float64
}

const intTol = 1e-6

// fixing pins one binary variable at a node.
type fixing struct {
	varIdx int
	value  float64
}

// node is one branch-and-bound node: its fixings and its parent bound.
type node struct {
	fixings []fixing
	bound   float64
}

// Solve runs depth-first branch-and-bound, branching on the most
// fractional binary variable and exploring the "round toward the LP
// value" child first.
func (md *Model) Solve(opt Options) (*Result, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50000
	}
	incumbent := math.Inf(1)
	if opt.IncumbentObj > 0 {
		incumbent = opt.IncumbentObj + 1e-9
	}
	var best []float64

	res := &Result{Status: Infeasible, RootBound: math.NaN()}
	stack := []node{{bound: math.Inf(-1)}}
	for len(stack) > 0 {
		if res.Nodes >= maxNodes {
			res.Status = NodeLimit
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.bound >= incumbent-1e-9 {
			continue // parent bound already dominated
		}
		res.Nodes++

		sol, err := md.solveNode(nd.fixings)
		if err != nil {
			return nil, err
		}
		if res.Nodes == 1 && sol.Status == lp.Optimal {
			res.RootBound = sol.Obj
		}
		if sol.Status != lp.Optimal {
			continue // infeasible or pathological node: prune
		}
		if sol.Obj >= incumbent-1e-9 {
			continue // bound
		}
		branchVar := md.mostFractional(sol.X)
		if branchVar < 0 {
			// integral: new incumbent
			incumbent = sol.Obj
			best = append([]float64(nil), sol.X...)
			continue
		}
		frac := sol.X[branchVar]
		// push the far child first so the near child is explored next
		nearFirst := 1.0
		if frac < 0.5 {
			nearFirst = 0
		}
		far := node{fixings: appendFixing(nd.fixings, branchVar, 1-nearFirst), bound: sol.Obj}
		near := node{fixings: appendFixing(nd.fixings, branchVar, nearFirst), bound: sol.Obj}
		stack = append(stack, far, near)
	}

	if best != nil {
		if res.Status != NodeLimit {
			res.Status = Optimal
		}
		res.Objective = incumbent
		res.Assignment = md.extractAssignment(best)
	}
	return res, nil
}

// appendFixing copies-and-extends a fixing list (nodes share prefixes).
func appendFixing(fs []fixing, varIdx int, val float64) []fixing {
	out := make([]fixing, len(fs)+1)
	copy(out, fs)
	out[len(fs)] = fixing{varIdx, val}
	return out
}

// solveNode solves the relaxation with the node's fixings appended.
func (md *Model) solveNode(fixings []fixing) (*lp.Solution, error) {
	p := &lp.Problem{
		NumVars:     md.base.NumVars,
		Objective:   md.base.Objective,
		Constraints: md.base.Constraints[:len(md.base.Constraints):len(md.base.Constraints)],
	}
	for _, f := range fixings {
		co := make([]float64, f.varIdx+1)
		co[f.varIdx] = 1
		p.AddConstraint(co, lp.EQ, f.value)
	}
	return lp.Solve(p)
}

// mostFractional returns the binary column to branch on, or -1 when all
// binaries are integral. Fractionality is weighted by importance — the
// shard's load for x variables, above any load for y variables — so the
// search fixes the vacancy pattern and the heavy shards first, which is
// where the relaxation's makespan bound actually moves.
func (md *Model) mostFractional(x []float64) int {
	maxLoad := 0.0
	for i := range md.c.Shards {
		if l := md.c.Shards[i].Load; l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		maxLoad = 1
	}
	M := md.c.NumMachines()
	best := -1
	bestScore := 0.0
	for j := 0; j < md.numX+M; j++ { // x's then y's
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist <= intTol {
			continue
		}
		weight := 2 * maxLoad // y variables: fix vacancy pattern first
		if j < md.numX {
			weight = md.c.Shards[j/M].Load
		}
		if score := dist * weight; score > bestScore {
			best = j
			bestScore = score
		}
	}
	return best
}

// extractAssignment reads the shard→machine mapping out of an integral x.
func (md *Model) extractAssignment(x []float64) []cluster.MachineID {
	S, M := md.c.NumShards(), md.c.NumMachines()
	out := make([]cluster.MachineID, S)
	for s := 0; s < S; s++ {
		out[s] = cluster.Unassigned
		for m := 0; m < M; m++ {
			if x[md.xIdx(s, m)] > 0.5 {
				out[s] = cluster.MachineID(m)
				break
			}
		}
	}
	return out
}

// RootBound solves only the root relaxation, giving a lower bound on the
// optimal makespan for instances too large to solve exactly.
func (md *Model) RootBound() (float64, error) {
	sol, err := lp.Solve(md.base)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("ip: root relaxation %v", sol.Status)
	}
	return sol.Obj, nil
}

// Package obs is the control plane's telemetry layer: a typed,
// allocation-conscious metric registry rendered in the Prometheus text
// exposition format, a structured JSONL event journal for replayable
// traces of controller/executor activity, and a promlint-style validator
// over exposition output. Everything is standard library only.
//
// The registry holds three metric kinds — monotone Counters, settable
// Gauges, and fixed-bucket Histograms — each available plain or with a
// fixed label set (CounterVec/GaugeVec). All mutation paths are atomic:
// hot loops (the solver's LNS iterations, the migration executor's
// dispatch path) update metrics lock-free, and the only locks are taken
// on first-time label resolution and at render time. Renders are
// deterministic: families sort by name, series by label values, and
// floats use the shortest round-trip form with NaN/+Inf/-Inf spelled the
// way Prometheus parsers expect.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic Add/Store/Load, stored as IEEE bits.
type atomicFloat struct{ bits atomic.Uint64 }

// Add atomically adds v.
func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Store atomically sets the value to v.
func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// Load atomically reads the value.
func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by v. Negative v panics: counters are
// monotone by contract and a silent decrease corrupts rate() queries.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %g", v))
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add increases (or with negative v decreases) the gauge.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// metric kinds as they appear on # TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labelled series of a family, holding exactly one of the
// typed metrics according to the family kind.
type child struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// family is one metric family: a name, help text, kind, and its series.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	children map[string]*child // guarded by: mu
}

// newChild creates the typed series for the family kind.
func (f *family) newChild(vals []string) *child {
	ch := &child{vals: vals}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = newHistogram(f.bounds)
	}
	return ch
}

// get resolves (creating on first use) the series for the given label
// values. The fast path is one mutex-guarded map lookup; the key string
// is only allocated when the label set is seen for the first time or the
// map must be consulted — callers on hot paths should resolve once and
// retain the typed handle.
func (f *family) get(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = f.newChild(append([]string(nil), vals...))
		f.children[key] = ch
	}
	return ch
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration panics on invalid or duplicate names — metric
// identity is a build-time property, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by: mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a new family.
func (r *Registry) register(name, help, kind string, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
		if kind == kindHistogram && l == "le" {
			panic(fmt.Sprintf("obs: histogram %s reserves the %q label", name, l))
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	r.families[name] = f
	return f
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).get(nil).c
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).get(nil).g
}

// Histogram registers and returns a plain histogram with the given bucket
// upper bounds (strictly increasing; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, checkBuckets(name, buckets)).get(nil).h
}

// CounterVec is a counter family partitioned by a fixed label set.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %s needs at least one label", name))
	}
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once outside hot loops.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).c }

// GaugeVec is a gauge family partitioned by a fixed label set.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %s needs at least one label", name))
	}
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).g }

// HistogramVec is a histogram family partitioned by a fixed label set;
// every series shares the family's bucket bounds. The "le" label is
// reserved for the bucket bound and rejected at registration.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %s needs at least one label", name))
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, checkBuckets(name, buckets))}
}

// With returns the histogram for the given label values, creating it on
// first use. Resolve once outside hot loops.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).h }

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), deterministically: families sorted
// by name, series sorted by label values.
//
//rexlint:detsink Prometheus exposition
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writePrometheus(w, false)
}

// WritePrometheusExemplars renders the same exposition with histogram
// exemplars appended to bucket lines (OpenMetrics-style
// `# {trace_id="…"} value` suffixes). Kept behind its own entry point —
// classic 0.0.4 scrapers may reject exemplar suffixes, so callers opt in
// explicitly (rexsim's -metrics-exemplars flag).
//
//rexlint:detsink Prometheus exposition
func (r *Registry) WritePrometheusExemplars(w io.Writer) error {
	return r.writePrometheus(w, true)
}

// writePrometheus renders every family, optionally with exemplars.
func (r *Registry) writePrometheus(w io.Writer, exemplars bool) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w, exemplars); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family.
func (f *family) write(w io.Writer, exemplars bool) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()

	for _, ch := range kids {
		var err error
		switch f.kind {
		case kindCounter:
			err = writeSample(w, f.name, f.labels, ch.vals, "", "", ch.c.Value(), nil)
		case kindGauge:
			err = writeSample(w, f.name, f.labels, ch.vals, "", "", ch.g.Value(), nil)
		case kindHistogram:
			err = ch.h.write(w, f.name, f.labels, ch.vals, exemplars)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one sample line. suffix extends the family name
// (histogram _bucket/_sum/_count); extraValue, when non-empty, is an
// "le" pair appended after the family labels; ex, when non-nil, appends
// the bucket's exemplar suffix.
func writeSample(w io.Writer, name string, labels, vals []string, suffix, extraValue string, v float64, ex *Exemplar) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extraValue != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(vals[i]))
			b.WriteByte('"')
		}
		if extraValue != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(FormatFloat(v))
	if ex != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(escapeLabel(ex.TraceID))
		b.WriteString(`"} `)
		b.WriteString(FormatFloat(ex.Value))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatFloat renders a float the way Prometheus expects: shortest
// round-trip decimal form, with the special values spelled NaN, +Inf,
// and -Inf.
func FormatFloat(x float64) string {
	switch {
	case math.IsNaN(x):
		return "NaN"
	case math.IsInf(x, +1):
		return "+Inf"
	case math.IsInf(x, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes, and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether name matches the Prometheus metric name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Project policy additionally demands
// rex_-prefixed snake_case, enforced statically by rexlint's metricname
// rule at registration sites.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and
// is not a double-underscore reserved name.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

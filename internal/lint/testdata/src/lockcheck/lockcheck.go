// Fixture for the lockcheck analyzer: guarded-field access without the
// mutex, lock leaks on some path, writes under RLock, blocking under a
// lock, and self-deadlocking re-entrant calls are flagged; constructors,
// //rexlint:holds callees, and select-with-default are not.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by: mu
}

type rwstore struct {
	mu    sync.RWMutex
	m     map[string]int // guarded by: mu
	stamp int            // guarded by: mu
}

func bad(c *counter) {
	c.n++ // want `access to c\.n \(guarded by mu\) without holding c\.mu on every path`
}

func badLeak(c *counter, ok bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) may still be held at a return or panic`
	if ok {
		return
	}
	c.mu.Unlock()
}

func badRLockWrite(s *rwstore) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.stamp = 1  // want `write to s\.stamp while s\.mu is only read-locked`
	s.m["k"] = 1 // want `write to s\.m while s\.mu is only read-locked`
	_ = s.m["k"] // read under RLock: fine
	_ = s.stamp  // read under RLock: fine
}

func badBlocking(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `channel send while holding c\.mu may block under the lock`
}

func badWait(c *counter, wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding c\.mu blocks under the lock`
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badReentrant() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.get() // want `call to get while holding c\.mu: the callee locks the same mutex \(self-deadlock\)`
}

// okConstructor fills guarded fields on a value nothing else can see yet.
func okConstructor() *counter {
	c := &counter{}
	c.n = 41
	c.n++
	return c
}

// incLocked runs with the lock already held by the caller.
//
//rexlint:holds c.mu
func (c *counter) incLocked() {
	c.n++
}

// okBothPaths releases on every path; the access is under the lock on
// every path.
func okBothPaths(c *counter, ok bool) {
	c.mu.Lock()
	if ok {
		c.n = 2
		c.mu.Unlock()
		return
	}
	c.n = 3
	c.mu.Unlock()
}

// okNonBlocking: a send inside a select with a default clause cannot
// block.
func okNonBlocking(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

// okRead holds the read lock for reads only.
func okRead(s *rwstore) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m) + s.stamp
}

type badAnnot struct {
	// guarded by: nomu
	x int // want `guarded by: nomu names no sibling sync\.Mutex/RWMutex field`
}

package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline is a ratchet: a set of accepted pre-existing diagnostics that a
// run may report without failing, so a new analyzer can land before every
// legacy finding is fixed. Entries are keyed by file, analyzer, and message
// — deliberately not by line number, so unrelated edits that shift code do
// not invalidate the baseline. Duplicate findings are tracked by count: a
// baseline with two entries for the same key absorbs at most two matching
// diagnostics, and any excess surfaces as new.
//
// The interchange format is one tab-separated record per line:
//
//	file<TAB>analyzer<TAB>message
//
// with '#'-prefixed comment lines and blank lines ignored. Filenames are
// stored as written by the caller (rexlint writes them module-relative).
type Baseline struct {
	counts map[string]int
}

// baselineKey canonicalizes one diagnostic for baseline matching.
func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is an error: the
// caller asked to ratchet against something that does not exist.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}

// ReadBaseline parses the baseline interchange format from r.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want file<TAB>analyzer<TAB>message, got %q", lineNo, line)
		}
		b.counts[baselineKey(parts[0], parts[1], parts[2])]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteBaseline emits diags in the baseline interchange format, sorted so
// the file is diff-stable across runs.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		msg := strings.ReplaceAll(d.Message, "\t", " ")
		lines = append(lines, d.Pos.Filename+"\t"+d.Analyzer+"\t"+msg)
	}
	sort.Strings(lines)
	if _, err := fmt.Fprintln(w, "# rexlint baseline: accepted diagnostics (file, analyzer, message)."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Shrink this file; never grow it."); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Analyzers returns the sorted set of analyzer names with at least one
// accepted entry in the baseline.
func (b *Baseline) Analyzers() []string {
	if b == nil {
		return nil
	}
	seen := make(map[string]bool)
	for k := range b.counts {
		parts := strings.SplitN(k, "\x00", 3)
		if len(parts) == 3 && !seen[parts[1]] {
			seen[parts[1]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewAnalyzerNames returns the sorted analyzer names that report in diags
// but have no entry in the old baseline. Rewriting a baseline would
// silently accept every finding of an analyzer added in the same change,
// defeating the ratchet for exactly the code the change touches — callers
// use this to refuse that rewrite unless explicitly allowed.
func NewAnalyzerNames(old *Baseline, diags []Diagnostic) []string {
	known := make(map[string]bool)
	for _, name := range old.Analyzers() {
		known[name] = true
	}
	fresh := make(map[string]bool)
	for _, d := range diags {
		if !known[d.Analyzer] && !fresh[d.Analyzer] {
			fresh[d.Analyzer] = true
		}
	}
	out := make([]string, 0, len(fresh))
	for name := range fresh {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Filter partitions diags into those not absorbed by the baseline (returned
// in order) and reports how many were absorbed. Each baseline entry absorbs
// at most its recorded count of matching diagnostics.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, absorbed int) {
	if b == nil {
		return diags, 0
	}
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, d := range diags {
		msg := strings.ReplaceAll(d.Message, "\t", " ")
		k := baselineKey(d.Pos.Filename, d.Analyzer, msg)
		if remaining[k] > 0 {
			remaining[k]--
			absorbed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, absorbed
}

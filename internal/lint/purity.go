package lint

// Purity enforces declared side-effect contracts using the interprocedural
// summaries. A function declared
//
//	//rexlint:pure
//
// must classify as "pure" on the summary lattice (pure < reads-receiver <
// mutates-receiver < global-effect): no receiver or parameter mutation, no
// package-level writes, no wall-clock reads, no blocking, and no dynamic
// calls the engine cannot resolve. Allocation alone is allowed — a pure
// function may build and return a fresh value.
//
// The same summaries also feed clockpurity (a callee chain hiding a
// wall-clock read) and lockcheck (a callee chain that blocks or unlocks
// while the caller reasons about held locks), upgrading both from
// per-function heuristics to call-graph facts.
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "require //rexlint:pure functions to have no observable side effects per their interprocedural summary",
	Run:  runPurity,
}

func runPurity(pass *Pass) error {
	for _, node := range pass.Prog.NodesOf(pass.pkg()) {
		if !node.DeclaredPure {
			continue
		}
		sum := pass.Prog.SummaryOf(node)
		bad := sum.Mask & impureBits
		if bad == 0 {
			continue
		}
		what, tr := describeImpurity(sum, bad)
		pos := node.Pos()
		if tr != nil && tr.EntryPos.IsValid() {
			pos = tr.EntryPos
		}
		pass.Reportf(pos, "%s is declared //rexlint:pure but is %s: %s%s",
			node.Name(), sum.Purity(), what, tr.Chain())
	}
	return nil
}

// describeImpurity picks the most severe violated bit and its provenance.
func describeImpurity(sum *Summary, bad uint16) (string, *Trace) {
	switch {
	case bad&EffUnknown != 0:
		return "it contains " + traceWhat(sum.Unknown, "a dynamic call"), sum.Unknown
	case bad&EffClock != 0:
		return "it reads the wall clock (" + traceWhat(sum.Clock, "clock read") + ")", sum.Clock
	case bad&EffBlock != 0:
		return "it may block (" + traceWhat(sum.Block, "blocking operation") + ")", sum.Block
	case bad&EffGlobal != 0:
		return "it has package-level effects", nil
	case bad&EffMutatesRecv != 0:
		return "it mutates its receiver", nil
	default:
		return "it writes through a parameter", nil
	}
}

func traceWhat(tr *Trace, fallback string) string {
	if tr == nil || tr.What == "" {
		return fallback
	}
	return tr.What
}

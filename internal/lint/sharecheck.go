package lint

// ShareCheck is the machine-checked isolation contract the partitioned
// parallel solver is built against (ROADMAP item 1): values of a type
// declared
//
//	//rexlint:owned
//
// in its type doc have single-owner semantics. Within a function, an
// owned value must not escape its owner — be sent on a channel, captured
// by or passed to a goroutine, stored into package-level state, stored
// into a second owner (a structure rooted at the receiver, a parameter,
// or a captured variable), or passed to a callee whose parameter escape
// summary says it leaks — unless the hand-off is sanctioned:
//
//   - a line-level `//rexlint:transfer <reason>` on or above the escape
//     site, or
//   - the callee is declared `//rexlint:transfer <reason>` in its doc
//     comment (a transfer sink: it takes ownership by contract).
//
// Freshly created values (a call result like Clone(), or a composite
// literal) stored in the same statement do not create a second owner: the
// store is the first owner. Returning an owned value likewise hands it
// back to the caller and is always allowed. Unused line-level transfer
// directives are themselves errors, mirroring unused ignores.
import (
	"go/ast"
	"go/token"
	"go/types"
)

var ShareCheck = &Analyzer{
	Name: "sharecheck",
	Doc:  "forbid //rexlint:owned values from escaping to goroutines, channels, globals, or second owners without //rexlint:transfer",
	Run:  runShareCheck,
}

func runShareCheck(pass *Pass) error {
	prog := pass.Prog
	pkg := pass.pkg()
	transfers := prog.transfersFor(pkg)
	for _, node := range prog.NodesOf(pkg) {
		checkShareNode(pass, node, transfers)
	}
	// Unused transfer directives are appended directly (they carry a
	// resolved position already), mirroring unused-ignore reporting.
	*pass.diags = append(*pass.diags, transfers.unusedTransfers()...)
	return nil
}

// checkShareNode scans one function body for owned-value escapes.
func checkShareNode(pass *Pass, node *FuncNode, transfers *transferSet) {
	prog := pass.Prog
	info := pass.TypesInfo

	ownedName := func(e ast.Expr) string {
		t := info.TypeOf(e)
		if t == nil {
			return ""
		}
		return prog.OwnedTypeName(t)
	}
	sanctioned := func(pos ast.Node) bool {
		return transfers.sanctioned(pass.Fset.Position(pos.Pos()))
	}
	report := func(at ast.Node, name, how string) {
		if sanctioned(at) {
			return
		}
		pass.Reportf(at.Pos(), "owned %s value %s; annotate the hand-off with //rexlint:transfer <reason> or clone first", name, how)
	}

	// fresh reports whether e creates a new value in place (call result or
	// composite literal): storing it is first ownership, not a second owner.
	fresh := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return true
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
				return isLit
			}
		}
		return false
	}

	inspectShallow(node.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.SendStmt:
			if name := ownedName(s.Value); name != "" {
				report(s, name, "sent on a channel")
			}
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				if name := ownedName(arg); name != "" {
					report(s, name, "passed to a goroutine")
				}
			}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				reportGoroutineCaptures(pass, node, lit, s, report)
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				name := ownedName(s.Rhs[i])
				if name == "" || fresh(s.Rhs[i]) {
					continue
				}
				deepStore := false
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					deepStore = true
				}
				class := classifyForNode(node, rootObject(info, lhs))
				if !deepStore && class != rootGlobal {
					continue // local aliasing, not a second owner
				}
				switch class {
				case rootGlobal:
					report(s, name, "stored in package-level state")
				case rootRecv, rootParam, rootCaptured:
					report(s, name, "stored into "+renderPath(lhs)+", creating a second owner")
				}
			}
		case *ast.CallExpr:
			checkShareCall(pass, node, s, ownedName, fresh, report)
		}
		return true
	})
}

// reportGoroutineCaptures flags owned free variables captured by a
// goroutine body.
func reportGoroutineCaptures(pass *Pass, node *FuncNode, lit *ast.FuncLit, at ast.Node, report func(ast.Node, string, string)) {
	info := pass.TypesInfo
	prog := pass.Prog
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: flagged as a global store elsewhere
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own local/param
		}
		if name := prog.OwnedTypeName(v.Type()); name != "" {
			seen[v] = true
			report(at, name, "captured by a goroutine")
		}
		return true
	})
	_ = node
}

// checkShareCall flags owned arguments passed to escaping parameters and
// owned values appended into non-local containers.
func checkShareCall(pass *Pass, node *FuncNode, call *ast.CallExpr, ownedName func(ast.Expr) string, fresh func(ast.Expr) bool, report func(ast.Node, string, string)) {
	info := pass.TypesInfo
	prog := pass.Prog

	// append(container, owned...) into a non-local container.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			if b.Name() == "append" && len(call.Args) >= 2 {
				if classifyForNode(node, rootObject(info, call.Args[0])) != rootLocal {
					for _, arg := range call.Args[1:] {
						if name := ownedName(arg); name != "" && !fresh(arg) {
							report(arg, name, "appended to "+renderPath(call.Args[0])+", creating a second owner")
						}
					}
				}
			}
			return
		}
	}

	callees := prog.CalleesAt(call)
	if callees == nil {
		// Stdlib or unresolved: passing an owned value out of the module
		// is conservatively an escape (the callee may retain it).
		if unknownRetains(pass, call) {
			for _, arg := range call.Args {
				if name := ownedName(arg); name != "" && !fresh(arg) {
					report(arg, name, "passed to an unresolvable callee that may retain it")
				}
			}
		}
		return
	}
	for _, arg := range call.Args {
		name := ownedName(arg)
		if name == "" || fresh(arg) {
			continue
		}
		for _, callee := range callees {
			if callee.TransferSink {
				continue // declared hand-off: callee takes ownership
			}
			cs := prog.SummaryOf(callee)
			idx := argParamIndex(callee, call, arg)
			if idx >= 0 && idx < len(cs.ParamEscape) && cs.ParamEscape[idx] != "" {
				report(arg, name, cs.ParamEscape[idx]+" by "+callee.Name())
				break
			}
		}
	}
}

// argParamIndex maps a call argument back to the callee's parameter index.
func argParamIndex(callee *FuncNode, call *ast.CallExpr, arg ast.Expr) int {
	for i, a := range call.Args {
		if a == arg {
			if i >= len(callee.Params) && len(callee.Params) > 0 {
				return len(callee.Params) - 1 // variadic tail
			}
			return i
		}
	}
	return -1
}

// unknownRetains reports whether an unresolved call might retain its
// arguments. Builtins and conversions never do; true stdlib calls are
// conservatively assumed to.
func unknownRetains(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[f].(type) {
		case *types.Builtin, *types.TypeName:
			return false
		case *types.Func:
			return true
		}
		return true
	case *ast.SelectorExpr:
		if _, isT := pass.TypesInfo.Uses[f.Sel].(*types.TypeName); isT {
			return false
		}
		if fn, ok := pass.TypesInfo.Uses[f.Sel].(*types.Func); ok && fn.Pkg() != nil {
			// Allowlist effect-free stdlib: math etc. never retain.
			mask, sortDriver := stdEffect(qualifiedFuncName(fn))
			if mask == 0 && !sortDriver {
				return false
			}
		}
		return true
	}
	return true
}

// Package sim simulates a search cluster serving a query trace over a given
// placement (fan-out to every serving machine, FIFO multi-server queues per
// machine) and simulates executing a migration plan under bandwidth and
// concurrency limits. It supplies the latency evidence for experiment F5:
// better balance → less queueing on hot machines → lower tail latency,
// which is the operational phenomenon motivating the paper.
package sim

import (
	"fmt"
	"sort"

	"rexchange/internal/cluster"
	"rexchange/internal/stats"
	"rexchange/internal/workload"
)

// timeEps is the tolerance for comparing simulated timestamps: two replicas
// whose earliest-free times agree within it are tied and fall through to the
// committed-time tie-break.
const timeEps = 1e-9

// Routing selects how queries pick among replicas of a logical shard
// (shards sharing a cluster.Shard.Group).
type Routing int

// Routing policies.
const (
	// RouteStatic spreads each shard's load onto its hosting machine
	// statically — the aggregate model used for unreplicated fleets.
	RouteStatic Routing = iota
	// RouteRoundRobin alternates queries across a group's replicas.
	RouteRoundRobin
	// RouteLeastLoaded sends each query to the replica whose machine can
	// start it soonest (join-the-shortest-queue).
	RouteLeastLoaded
)

// String names the routing policy.
func (r Routing) String() string {
	switch r {
	case RouteStatic:
		return "static"
	case RouteRoundRobin:
		return "round-robin"
	case RouteLeastLoaded:
		return "least-loaded"
	default:
		return "routing(?)"
	}
}

// Config parameterizes the serving simulation.
type Config struct {
	// Cores is the number of parallel servers per machine.
	Cores int
	// WorkScale converts (shard load × query cost) into seconds of
	// service time on a speed-1 machine.
	WorkScale float64
	// Routing selects replica routing for grouped shards; ignored when
	// the cluster has no replica groups.
	Routing Routing
	// SLA is the latency objective in seconds; queries slower than this
	// count into Report.SLAMissFrac. Zero disables SLA accounting.
	SLA float64
}

// DefaultConfig returns serving parameters that put a default workload
// near 60-70% average utilization.
func DefaultConfig() Config {
	return Config{Cores: 4, WorkScale: 1e-4}
}

// Report summarizes one serving simulation.
type Report struct {
	// Queries is the number of simulated queries.
	Queries int
	// MeanLatency and the percentiles are in trace time units (seconds).
	MeanLatency               float64
	P50, P95, P99, MaxLatency float64
	// MachineBusy is each machine's busy fraction over the trace duration
	// (index = MachineID; vacant machines are 0).
	MachineBusy []float64
	// MaxBusy and MeanBusy summarize MachineBusy over serving machines.
	MaxBusy, MeanBusy float64
	// SLAMissFrac is the fraction of queries exceeding Config.SLA
	// (0 when SLA accounting is disabled).
	SLAMissFrac float64
}

// Run simulates the trace against the placement. Every query produces one
// task per serving machine whose service time is proportional to the total
// load of the machine's hosted shards; the query completes when its slowest
// machine responds (scatter-gather). Machines are FIFO queues with
// Config.Cores parallel servers.
func Run(p *cluster.Placement, tr *workload.Trace, cfg Config) (*Report, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: Cores must be positive, got %d", cfg.Cores)
	}
	if cfg.WorkScale <= 0 {
		return nil, fmt.Errorf("sim: WorkScale must be positive, got %g", cfg.WorkScale)
	}
	if len(tr.Queries) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	c := p.Cluster()
	nm := c.NumMachines()

	// Static per-machine work per unit query cost (ungrouped shards, and
	// grouped ones too under RouteStatic).
	staticWork := make([]float64, nm)
	// Replica groups routed per query: group → hosting machines and the
	// logical shard's full per-query work.
	type replicaGroup struct {
		machines []cluster.MachineID
		work     float64 // per unit query cost, before speed division
		rr       int
	}
	groups := map[int]*replicaGroup{}
	serving := make([]cluster.MachineID, 0, nm)
	for m := 0; m < nm; m++ {
		id := cluster.MachineID(m)
		if p.IsVacant(id) {
			continue
		}
		serving = append(serving, id)
		p.EachShardOn(id, func(s cluster.ShardID) {
			sh := &c.Shards[s]
			if sh.Group == 0 || cfg.Routing == RouteStatic {
				staticWork[m] += sh.Load * cfg.WorkScale
				return
			}
			g := groups[sh.Group]
			if g == nil {
				g = &replicaGroup{}
				groups[sh.Group] = g
			}
			g.machines = append(g.machines, id)
			g.work += sh.Load * cfg.WorkScale
		})
	}
	if len(serving) == 0 {
		return nil, fmt.Errorf("sim: placement has no serving machines")
	}
	// Route groups in sorted-ID order: map iteration order would leak into
	// the round-robin counters and the least-loaded tie-breaks, making the
	// simulated latencies depend on the run rather than the seed.
	groupIDs := make([]int, 0, len(groups))
	for gid := range groups {
		groupIDs = append(groupIDs, gid)
	}
	sort.Ints(groupIDs)
	groupList := make([]*replicaGroup, 0, len(groups))
	for _, gid := range groupIDs {
		groupList = append(groupList, groups[gid])
	}

	// FIFO multi-server queues: serverFree[m][k] is when server k of
	// machine m becomes free. Tasks are assigned in arrival order to the
	// earliest-free server, which is exactly FIFO semantics.
	serverFree := make([][]float64, nm)
	for _, m := range serving {
		serverFree[m] = make([]float64, cfg.Cores)
	}
	busy := make([]float64, nm)

	// earliestFree returns the soonest a new task could start on m, and
	// the machine's total committed server time as a tie-breaker (when
	// several replicas could start immediately, prefer the least
	// committed one).
	earliestFree := func(m cluster.MachineID, at float64) (float64, float64) {
		sf := serverFree[m]
		best := sf[0]
		committed := 0.0
		for i := 0; i < len(sf); i++ {
			if sf[i] < best {
				best = sf[i]
			}
			if sf[i] > at {
				committed += sf[i] - at
			}
		}
		if best < at {
			best = at
		}
		return best, committed
	}

	// scratch per-query work accumulator
	extra := make([]float64, nm)
	touched := make([]cluster.MachineID, 0, nm)

	latencies := make([]float64, len(tr.Queries))
	for qi, q := range tr.Queries {
		// route replica groups
		touched = touched[:0]
		for _, g := range groupList {
			var pick cluster.MachineID
			switch cfg.Routing {
			case RouteLeastLoaded:
				pick = g.machines[0]
				bestEF, bestCom := earliestFree(pick, q.At)
				for _, m := range g.machines[1:] {
					ef, com := earliestFree(m, q.At)
					if ef < bestEF || (stats.AlmostEqual(ef, bestEF, timeEps) && com < bestCom) {
						pick, bestEF, bestCom = m, ef, com
					}
				}
			default: // RouteRoundRobin
				pick = g.machines[g.rr%len(g.machines)]
				g.rr++
			}
			if extra[pick] == 0 {
				touched = append(touched, pick)
			}
			extra[pick] += g.work
		}

		done := q.At
		for _, m := range serving {
			work := staticWork[m] + extra[m]
			if work == 0 {
				continue
			}
			service := work * q.Cost / c.Machines[m].Speed
			// earliest-free server
			sf := serverFree[m]
			k := 0
			for i := 1; i < len(sf); i++ {
				if sf[i] < sf[k] {
					k = i
				}
			}
			start := q.At
			if sf[k] > start {
				start = sf[k]
			}
			finish := start + service
			sf[k] = finish
			busy[m] += service
			if finish > done {
				done = finish
			}
		}
		latencies[qi] = done - q.At
		for _, m := range touched {
			extra[m] = 0
		}
	}

	// Busy fractions are normalized by the span the servers were actually
	// observable: traces without an explicit Duration used to fall back to
	// the last *arrival* time, but committed service extends past it — tasks
	// arriving near the end still run to completion — so busy/(duration·cores)
	// could exceed 1.0. Normalizing by the latest task finish (never less
	// than a declared Duration) keeps every fraction in [0, 1].
	duration := tr.Duration
	for _, m := range serving {
		for _, f := range serverFree[m] {
			if f > duration {
				duration = f
			}
		}
	}
	if duration <= 0 {
		duration = 1 // no declared span and no work: fractions are all zero
	}
	rep := &Report{
		Queries:     len(tr.Queries),
		MeanLatency: stats.Mean(latencies),
		MachineBusy: make([]float64, nm),
	}
	ps := stats.Percentiles(latencies, 50, 95, 99, 100)
	rep.P50, rep.P95, rep.P99, rep.MaxLatency = ps[0], ps[1], ps[2], ps[3]
	if cfg.SLA > 0 {
		miss := 0
		for _, l := range latencies {
			if l > cfg.SLA {
				miss++
			}
		}
		rep.SLAMissFrac = float64(miss) / float64(len(latencies))
	}
	var busyVals []float64
	for _, m := range serving {
		// busy fraction normalized by cores (a fully loaded machine keeps
		// all servers occupied for the whole trace)
		frac := busy[m] / (duration * float64(cfg.Cores))
		rep.MachineBusy[m] = frac
		busyVals = append(busyVals, frac)
	}
	rep.MaxBusy = stats.Max(busyVals)
	rep.MeanBusy = stats.Mean(busyVals)
	return rep, nil
}

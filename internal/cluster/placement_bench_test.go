package cluster

import (
	"math/rand"
	"testing"

	"rexchange/internal/vec"
)

// benchPlacement builds a 200-machine, 3000-shard placement for the
// micro-benchmarks.
func benchPlacement(b *testing.B) *Placement {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	c := &Cluster{}
	const nm, ns = 200, 3000
	for m := 0; m < nm; m++ {
		c.Machines = append(c.Machines, Machine{
			ID: MachineID(m), Capacity: vec.Uniform(1e9), Speed: 1,
		})
	}
	assign := make([]MachineID, ns)
	for s := 0; s < ns; s++ {
		c.Shards = append(c.Shards, Shard{
			ID:     ShardID(s),
			Static: vec.New(r.Float64()*10, r.Float64()*10, r.Float64()*10),
			Load:   r.Float64() * 5,
		})
		assign[s] = MachineID(r.Intn(nm))
	}
	p, err := FromAssignment(c, assign)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkMove(b *testing.B) {
	p := benchPlacement(b)
	r := rand.New(rand.NewSource(2))
	nm := p.Cluster().NumMachines()
	ns := p.Cluster().NumShards()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Move(ShardID(r.Intn(ns)), MachineID(r.Intn(nm)))
	}
}

func BenchmarkCanPlace(b *testing.B) {
	p := benchPlacement(b)
	r := rand.New(rand.NewSource(3))
	nm := p.Cluster().NumMachines()
	ns := p.Cluster().NumShards()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CanPlace(ShardID(r.Intn(ns)), MachineID(r.Intn(nm)))
	}
}

func BenchmarkClone(b *testing.B) {
	p := benchPlacement(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Clone()
	}
}

func BenchmarkUtilizations(b *testing.B) {
	p := benchPlacement(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Utilizations()
	}
}

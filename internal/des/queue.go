package des

import "rexchange/internal/ctl"

// LegState is the lifecycle of one query leg inside a machine queue. The
// transition table is machine-checked by rexlint's statecheck analyzer:
// a leg can never skip the queue, run twice, or complete from the queued
// state.
//
//rexlint:transition LegQueued -> LegRunning
//rexlint:transition LegRunning -> LegDone
//rexlint:transition LegDone ->
type LegState uint8

// Leg lifecycle states.
const (
	// LegQueued: waiting in the machine's FIFO.
	LegQueued LegState = iota
	// LegRunning: at the head of the queue, being served.
	LegRunning
	// LegDone: service finished; the leg has merged back into its query.
	LegDone
)

// String names the state for diagnostics.
func (s LegState) String() string {
	switch s {
	case LegQueued:
		return "queued"
	case LegRunning:
		return "running"
	case LegDone:
		return "done"
	default:
		return "leg(?)"
	}
}

// leg is one unit of query work routed to a machine: the owning query and
// the work to serve, in cluster Load units (speed-seconds). tr is nil on
// every unsampled leg — the hot path carries one extra pointer-sized
// field and allocates nothing.
type leg struct {
	q     int32
	work  float64
	state LegState
	tr    *legTrace
}

// machine is the simulator's per-machine serving state: a FIFO ring of
// legs and the current service-rate modifiers. The ring grows on demand
// and is reused across the whole run, so steady-state enqueue/dequeue
// never allocates.
type machine struct {
	speed  float64 // cluster serving speed (Load units per second)
	copies int     // outbound migration copies currently streaming

	// refs identifies the copies behind the count, oldest first. Blame
	// attribution charges a delayed leg to the oldest active copy: it
	// has degraded the machine longest over the leg's lifetime. Kept in
	// arrival order by append/remove, both on the single-goroutine
	// observer path.
	refs []ctl.MoveRef

	ring []leg // power-of-two capacity circular buffer
	head int
	n    int //rexlint:nonneg
}

// addRef records an outbound copy's identity alongside copies++.
func (m *machine) addRef(ref ctl.MoveRef) { m.refs = append(m.refs, ref) }

// dropRef removes the finished copy's identity, preserving order.
func (m *machine) dropRef(ref ctl.MoveRef) {
	for i, r := range m.refs {
		if r == ref {
			m.refs = append(m.refs[:i], m.refs[i+1:]...)
			return
		}
	}
}

// oldestRef returns the longest-active copy on the machine; ok is false
// when none is streaming.
//
//rexlint:noalloc
func (m *machine) oldestRef() (ctl.MoveRef, bool) {
	if len(m.refs) == 0 {
		return ctl.MoveRef{}, false
	}
	return m.refs[0], true
}

// depth returns the number of legs queued or running on the machine.
//
//rexlint:noalloc
func (m *machine) depth() int { return m.n }

// push appends a leg in LegQueued state, growing the ring if full.
func (m *machine) push(l leg) {
	if m.n == len(m.ring) {
		m.grow()
	}
	l.state = LegQueued
	m.ring[(m.head+m.n)&(len(m.ring)-1)] = l
	m.n++
}

// grow doubles the ring, rebasing the live window to index 0.
func (m *machine) grow() {
	size := len(m.ring) * 2
	if size == 0 {
		size = 8
	}
	next := make([]leg, size)
	for i := 0; i < m.n; i++ {
		next[i] = m.ring[(m.head+i)&(len(m.ring)-1)]
	}
	m.ring = next
	m.head = 0
}

// front returns the head leg. The queue must be non-empty.
//
//rexlint:noalloc
func (m *machine) front() *leg { return &m.ring[m.head] }

// pop removes the head leg. The queue must be non-empty.
//
//rexlint:noalloc
//rexlint:requires n>=1
func (m *machine) pop() leg {
	l := m.ring[m.head]
	m.head = (m.head + 1) & (len(m.ring) - 1)
	m.n--
	return l
}

// effectiveSpeed is the service rate with migration degradation applied:
// every copy streaming off the machine multiplies its speed by (1-drag),
// modelling the sequential-read and network pressure of an index transfer
// sharing the box with query serving.
//
//rexlint:noalloc
func (m *machine) effectiveSpeed(drag float64) float64 {
	s := m.speed
	for i := 0; i < m.copies; i++ {
		s *= 1 - drag
	}
	return s
}

package obs

import (
	"fmt"
	"math/rand"

	"rexchange/internal/rng"
)

// This file is the tracing third of the telemetry layer: deterministic
// trace/span identity plus journal emission. A trace is a tree of spans
// identified by 64-bit IDs rendered as 16 hex digits. Two ID-minting
// disciplines coexist, both deterministic:
//
//   - Query traces draw their trace ID from the rng.Partitioned "trace"
//     sub-stream (rng.StreamTrace). Because that stream is isolated,
//     enabling or disabling sampling — or changing the rate — cannot
//     perturb workload generation, which draws from "workload".
//   - Control-plane traces (round → solve → move) use pure functions of
//     (round, seq): RoundTraceID, RoundSpanID, SolveSpanID, MoveSpanID.
//     The simulator and the executor compute identical IDs without
//     exchanging state, which is what lets a query leg's blocked_by link
//     and a move's own span join on (round, seq) at analysis time.
//
// Span IDs within a trace are derived from the trace ID by DeriveSpan
// (chained splitmix64 over an index tuple), never drawn from a stream:
// a span's identity is a function of its position in the tree, so the
// journal byte stream is identical across runs and GOMAXPROCS values.

// TraceID identifies one trace (one sampled query, or one control round).
type TraceID uint64

// String renders the ID as 16 lowercase hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// DeriveSpan derives the span ID at an index tuple of the trace's span
// tree. The same (trace, tuple) always yields the same ID; distinct
// tuples yield structurally uncorrelated IDs (rng.CellSeed).
func DeriveSpan(trace TraceID, idx ...int) SpanID {
	return SpanID(rng.CellSeed(int64(trace), idx...))
}

// Tag bases decorrelating the control plane's pure-function trace IDs
// from each other and from query trace IDs. Arbitrary distinct constants;
// pinned by TestCtlTraceIDsPinned so a change is a deliberate schema
// break, not an accident.
const ctlTraceTag = 0x7265782D74726163 // "rex-trac"

// Span-tree indices of the control-plane spans under a round trace.
const (
	idxRoundSpan = 0
	idxSolveSpan = 1
	idxMoveSpan  = 2 // MoveSpanID appends the move seq
)

// RoundTraceID is the trace ID of control round r. Pure function: the
// controller, the executor, and offline analysis all compute it locally.
func RoundTraceID(round int) TraceID {
	return TraceID(rng.CellSeed(ctlTraceTag, round))
}

// RoundSpanID is the root span of round r's trace.
func RoundSpanID(round int) SpanID {
	return DeriveSpan(RoundTraceID(round), idxRoundSpan)
}

// SolveSpanID is the solve span of round r, child of RoundSpanID.
func SolveSpanID(round int) SpanID {
	return DeriveSpan(RoundTraceID(round), idxSolveSpan)
}

// MoveSpanID is the span of move seq in round r's plan, child of
// RoundSpanID.
func MoveSpanID(round, seq int) SpanID {
	return DeriveSpan(RoundTraceID(round), idxMoveSpan, seq)
}

// Span operation names, recorded in TraceEvent.Op.
const (
	OpQuery   = "query"   // query root: arrival → merge done
	OpLeg     = "leg"     // one fan-out leg: enqueue → service done
	OpQueue   = "queue"   // queue wait inside a leg
	OpService = "service" // service time inside a leg
	OpMerge   = "merge"   // merge barrier: slowest leg → completion
	OpRound   = "round"   // one control round
	OpSolve   = "solve"   // the round's budgeted solve
	OpMove    = "move"    // one shard copy, dispatch → land
)

// BlameRef attributes a span's delay to one migration move: the copy of
// plan move (Round, Seq) running on Machine either slowed the leg's
// service directly (Kind "drag") or slowed the queue the leg waited in
// (Kind "queue"), costing Delay simulated seconds versus an unimpaired
// machine.
type BlameRef struct {
	Round   int     `json:"round"`
	Seq     int     `json:"seq"`
	Machine int     `json:"machine"`
	Kind    string  `json:"kind"`
	Delay   float64 `json:"delay"`
}

// Blame kinds.
const (
	BlameDrag  = "drag"  // copy streaming off the machine slowed service
	BlameQueue = "queue" // queue drained slower because of an active copy
)

// TraceEvent is the payload of a SpanTrace journal record: one completed
// span. Spans are emitted once, at their end time (the record's T field);
// Start carries the opening timestamp, so duration = T − Start. Machine,
// Shard, and Seq are −1 when not applicable to the op.
type TraceEvent struct {
	ID     string `json:"id"`            // trace ID, 16 hex digits
	Span   string `json:"sid"`           // this span's ID
	Parent string `json:"pid,omitempty"` // parent span ID; empty on roots
	Op     string `json:"op"`

	Start   float64 `json:"start"`
	Machine int     `json:"machine"`
	Shard   int     `json:"shard"`
	Seq     int     `json:"seq"`

	// Mig is the migration phase ("before"/"during"/"after") at query
	// arrival; set on query roots only.
	Mig string `json:"mig,omitempty"`

	// Blocked names the migration move whose copy delayed this span.
	Blocked *BlameRef `json:"blocked_by,omitempty"`
}

// traceMetrics is the rex_trace_* family set, attached lazily so a
// metrics-less tracer still journals.
type traceMetrics struct {
	sampled *Counter
	spans   map[string]*Counter
	blame   *Counter
}

// traceOps enumerates every op for eager series resolution: an op that
// never fires still renders as a zero sample, so LintExposition never
// sees a declared-but-empty family and dashboards see a stable series
// set.
var traceOps = []string{OpQuery, OpLeg, OpQueue, OpService, OpMerge, OpRound, OpSolve, OpMove}

// newTraceMetrics registers the rex_trace_* families on reg.
func newTraceMetrics(reg *Registry) *traceMetrics {
	m := &traceMetrics{
		sampled: reg.Counter("rex_trace_sampled_total",
			"Queries selected by the trace sampler."),
		blame: reg.Counter("rex_trace_blame_seconds_total",
			"Simulated seconds of query delay attributed to migration moves."),
		spans: make(map[string]*Counter, len(traceOps)),
	}
	vec := reg.CounterVec("rex_trace_spans_total",
		"Trace spans emitted to the journal.", "op")
	for _, op := range traceOps {
		m.spans[op] = vec.With(op)
	}
	return m
}

// Tracer mints sampling decisions from the rng "trace" sub-stream and
// writes completed spans into the journal as SpanTrace records. All
// methods are nil-receiver safe, so instrumented code paths read as
// straight-line calls with tracing compiled in permanently and enabled
// by configuration.
//
// Sample draws from a *rand.Rand and must only be called from the
// goroutine that owns the stream (in practice the simulator's event
// loop); Emit is safe for concurrent use (the journal serializes).
type Tracer struct {
	r    *rand.Rand
	rate float64
	j    *Journal
	m    *traceMetrics
}

// NewTracer builds a tracer sampling at the given rate (0 disables, 1
// samples everything) whose IDs come from r — by contract the
// rng.StreamTrace sub-stream — and whose spans go to j.
//
//rexlint:stream trace
func NewTracer(r *rand.Rand, rate float64, j *Journal) *Tracer {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Tracer{r: r, rate: rate, j: j}
}

// AttachMetrics registers the rex_trace_* families on reg and counts
// subsequent Sample/Emit calls against them.
func (t *Tracer) AttachMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.m = newTraceMetrics(reg)
}

// Sample decides whether to trace the next unit of work and, if so,
// mints its trace ID. Both draws come from the isolated trace stream, so
// the decision sequence for a fixed seed is identical regardless of what
// any other subsystem does — and no other stream advances here.
func (t *Tracer) Sample() (TraceID, bool) {
	if t == nil || t.rate <= 0 {
		return 0, false
	}
	if t.r.Float64() >= t.rate {
		return 0, false
	}
	id := TraceID(t.r.Uint64())
	if t.m != nil {
		t.m.sampled.Inc()
	}
	return id, true
}

// Emit journals one completed span at time at (its end timestamp) under
// the given control round.
func (t *Tracer) Emit(at float64, round int, ev TraceEvent) {
	if t == nil {
		return
	}
	if t.m != nil {
		if c, ok := t.m.spans[ev.Op]; ok {
			c.Inc()
		}
		if ev.Blocked != nil {
			t.m.blame.Add(ev.Blocked.Delay)
		}
	}
	if t.j == nil {
		return
	}
	t.j.Emit(Event{
		T:     at,
		Span:  SpanTrace,
		Phase: PhaseEnd,
		Round: round,
		Trace: &ev,
	})
}

// Enabled reports whether the tracer can ever sample. Callers use it to
// skip building per-query trace state entirely when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil && t.rate > 0 }

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the exposition naming contract at registration sites:
// every metric registered on an internal/obs Registry (Counter, Gauge,
// Histogram, CounterVec, GaugeVec, HistogramVec) must pass a string literal matching
// rex_<snake_case> as its name. The registry validates names at runtime
// and panics on garbage, but only on the first scrape of a rarely-taken
// code path; a literal checked statically fails in CI instead of in a
// dashboard. Constant-expression names are fine; names computed at runtime
// (fmt.Sprintf, variables) defeat both checks and are reported too —
// encode variability in label values, not metric names.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names must be rex_-prefixed snake_case string literals at obs registration sites",
	Run:  runMetricName,
}

// metricNameRe is the exposition contract: rex_ prefix, lowercase
// snake_case segments, no leading/trailing/doubled underscores.
var metricNameRe = regexp.MustCompile(`^rex_[a-z0-9]+(_[a-z0-9]+)*$`)

// registryMethods are the Registry registration entry points whose first
// argument is the metric name.
var registryMethods = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

func runMetricName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			if !isObsRegistry(pass.TypesInfo, sel) {
				return true
			}
			arg := call.Args[0]
			name, lit := stringConst(pass.TypesInfo, arg)
			if !lit {
				pass.Reportf(arg.Pos(),
					"metric name passed to Registry.%s must be a string literal (got a runtime value); encode variability in label values",
					sel.Sel.Name)
				return true
			}
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q must match %s (rex_-prefixed snake_case)",
					name, metricNameRe)
			}
			return true
		})
	}
	return nil
}

// isObsRegistry reports whether sel selects a method on *obs.Registry from
// this module's internal/obs package.
func isObsRegistry(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// stringConst evaluates arg as a compile-time string constant (literal or
// constant expression).
func stringConst(info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

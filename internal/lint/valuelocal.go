package lint

// Local (per-function) half of the value-flow engine: directive collection,
// the per-node analysis context, the dataflow transfer function over the
// v2 CFG, and taint evaluation for expressions. valuesolve.go drives these
// to a bottom-up interprocedural fixpoint.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// vfMode selects the counter interpretation of one local pass. Absolute
// mode proves lower bounds from function entry (reporting); delta mode
// tracks the net offset from an arbitrary entry value (summary inference).
type vfMode int

const (
	vfAbs vfMode = iota
	vfDelta
)

// vfDirectives is the parsed annotation universe of one program.
type vfDirectives struct {
	// sources are //rexlint:streamsource functions: their result carries
	// the stream named by the call's first argument.
	sources map[*FuncNode]bool
	// declared maps functions to their //rexlint:stream declarations
	// (sorted stream names). Literals inherit the enclosing declaration.
	declared map[*FuncNode][]string
	// sinks are //rexlint:detsink functions with their description.
	sinks map[*FuncNode]string
	// canonical are //rexlint:canonical functions: they canonicalize their
	// input, so order taint neither enters nor leaves them.
	canonical map[*FuncNode]bool
	// nonneg are the //rexlint:nonneg-annotated integer struct fields.
	nonneg map[*types.Var]bool
	// requires maps functions to their //rexlint:requires field>=k entry
	// preconditions.
	requires map[*FuncNode]map[string]int
	// pkgFind collects directive-validation findings (malformed requires,
	// nonneg on a non-integer field) per package.
	pkgFind map[*Package][]vfFinding
}

// collectVFDirectives parses every value-flow directive in the program.
func collectVFDirectives(p *Program) *vfDirectives {
	d := &vfDirectives{
		sources:   make(map[*FuncNode]bool),
		declared:  make(map[*FuncNode][]string),
		sinks:     make(map[*FuncNode]string),
		canonical: make(map[*FuncNode]bool),
		nonneg:    make(map[*types.Var]bool),
		requires:  make(map[*FuncNode]map[string]int),
		pkgFind:   make(map[*Package][]vfFinding),
	}
	for _, n := range p.graph.nodes {
		if n.Decl == nil {
			continue
		}
		if len(funcDirective(n.Decl, "streamsource")) > 0 {
			d.sources[n] = true
		}
		if dirs := funcDirective(n.Decl, "stream"); len(dirs) > 0 {
			set := map[string]bool{}
			for _, fields := range dirs {
				for _, f := range fields {
					set[f] = true
				}
			}
			names := make([]string, 0, len(set))
			for name := range set {
				names = append(names, name)
			}
			sort.Strings(names)
			d.declared[n] = names
		}
		if dirs := funcDirective(n.Decl, "detsink"); len(dirs) > 0 {
			desc := strings.Join(dirs[0], " ")
			if desc == "" {
				desc = "deterministic output"
			}
			d.sinks[n] = desc
		}
		if len(funcDirective(n.Decl, "canonical")) > 0 {
			d.canonical[n] = true
		}
		for _, fields := range funcDirective(n.Decl, "requires") {
			for _, f := range fields {
				name, k, ok := parseRequires(f)
				if !ok {
					d.pkgFind[n.Pkg] = append(d.pkgFind[n.Pkg], vfFinding{
						kind: vfNonneg, pos: n.Decl.Pos(),
						msg: fmt.Sprintf("malformed //rexlint:requires clause %q: want field>=k", f),
					})
					continue
				}
				if d.requires[n] == nil {
					d.requires[n] = make(map[string]int)
				}
				d.requires[n][name] = k
			}
		}
	}
	for _, pkg := range p.Pkgs {
		collectNonnegFields(pkg, d)
	}
	return d
}

// parseRequires parses one "field>=k" clause.
func parseRequires(s string) (field string, k int, ok bool) {
	name, num, found := strings.Cut(s, ">=")
	if !found || name == "" {
		return "", 0, false
	}
	v, err := strconv.Atoi(num)
	if err != nil || v < 0 {
		return "", 0, false
	}
	return name, v, true
}

// collectNonnegFields scans struct declarations for //rexlint:nonneg field
// annotations (doc comment above the field or line comment beside it).
func collectNonnegFields(pkg *Package, d *vfDirectives) {
	hasDirective := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "rexlint:nonneg" || strings.HasPrefix(text, "rexlint:nonneg ") {
				return true
			}
		}
		return false
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasDirective(field.Doc) && !hasDirective(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					obj, _ := pkg.Info.Defs[name].(*types.Var)
					if obj == nil {
						continue
					}
					if basic, isBasic := obj.Type().Underlying().(*types.Basic); !isBasic || basic.Info()&types.IsInteger == 0 {
						d.pkgFind[pkg] = append(d.pkgFind[pkg], vfFinding{
							kind: vfNonneg, pos: name.Pos(),
							msg: fmt.Sprintf("//rexlint:nonneg on non-integer field %s (%s)", name.Name, obj.Type()),
						})
						continue
					}
					d.nonneg[obj] = true
				}
			}
			return true
		})
	}
}

// vfCtx is the prescanned per-function context shared by every local pass
// over the same node.
type vfCtx struct {
	n      *FuncNode
	cfg    *CFG
	siteOf map[*ast.CallExpr]*CallSite
	// derived marks local variables initialized as direct copies of an
	// annotated counter field (`remaining := p.vacant`): they are tracked
	// counters in their own right.
	derived map[types.Object]bool
	// selectOrdered marks receive-assignments inside selects with two or
	// more receive arms: arrival order is scheduler-dependent.
	selectOrdered map[ast.Node]bool
	// mapRanges are the body spans of map-range statements, for the
	// sink-called-inside-map-iteration check.
	mapRanges []posRange
	recvKey   string
	// recvFields are the annotated field names of the receiver's struct
	// type, sorted.
	recvFields []string
	// declared is the function's effective //rexlint:stream set (literals
	// inherit lexically).
	declared []string
}

// buildVFCtx prescans one function node.
func buildVFCtx(vf *valueFlowInfo, n *FuncNode) *vfCtx {
	info := n.Pkg.Info
	ctx := &vfCtx{
		n:             n,
		cfg:           BuildCFG(n.Body, info),
		siteOf:        make(map[*ast.CallExpr]*CallSite),
		derived:       make(map[types.Object]bool),
		selectOrdered: make(map[ast.Node]bool),
		declared:      vf.declaredOf(n),
	}
	for i := range n.Calls {
		site := &n.Calls[i]
		if site.Call != nil {
			ctx.siteOf[site.Call] = site
		}
	}
	if n.Recv != nil {
		ctx.recvKey = fmt.Sprintf("v%p", n.Recv)
		if st := derefStruct(n.Recv.Type()); st != nil {
			for i := 0; i < st.NumFields(); i++ {
				if vf.dirs.nonneg[st.Field(i)] {
					ctx.recvFields = append(ctx.recvFields, st.Field(i).Name())
				}
			}
			sort.Strings(ctx.recvFields)
		}
	}
	inspectShallow(n.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if sel, ok := ast.Unparen(s.Rhs[i]).(*ast.SelectorExpr); ok {
					if fv, _ := info.Uses[sel.Sel].(*types.Var); fv != nil && vf.dirs.nonneg[fv] {
						if obj := info.Defs[id]; obj != nil {
							ctx.derived[obj] = true
						}
					}
				}
			}
		case *ast.SelectStmt:
			recvs := 0
			var comms []ast.Node
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				switch comm := cc.Comm.(type) {
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 && isReceiveExpr(comm.Rhs[0]) {
						recvs++
						comms = append(comms, comm)
					}
				case *ast.ExprStmt:
					if isReceiveExpr(comm.X) {
						recvs++
					}
				}
			}
			if recvs >= 2 {
				for _, c := range comms {
					ctx.selectOrdered[c] = true
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(s.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ctx.mapRanges = append(ctx.mapRanges, posRange{s.Body.Pos(), s.Body.End()})
				}
			}
		}
		return true
	})
	return ctx
}

func isReceiveExpr(e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

func (ctx *vfCtx) inMapRange(pos token.Pos) bool {
	for _, r := range ctx.mapRanges {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// counterKeyOf canonicalizes an expression that denotes a tracked counter:
// a path ending in a //rexlint:nonneg field, or a derived local copy.
func (ctx *vfCtx) counterKeyOf(vf *valueFlowInfo, e ast.Expr) (string, bool) {
	info := ctx.n.Pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj != nil && ctx.derived[obj] {
			return fmt.Sprintf("v%p", obj), true
		}
	case *ast.SelectorExpr:
		if fv, _ := info.Uses[x.Sel].(*types.Var); fv != nil && vf.dirs.nonneg[fv] {
			return exprKey(info, e)
		}
	}
	return "", false
}

// vfFlow is the Flow instance of one local pass.
type vfFlow struct {
	vf   *valueFlowInfo
	ctx  *vfCtx
	mode vfMode
}

func (fl *vfFlow) Entry() *vfState {
	st := newVFState()
	n := fl.ctx.n
	if fl.mode == vfAbs {
		req := fl.vf.dirs.requires[n]
		for _, f := range fl.ctx.recvFields {
			if k := req[f]; k > 0 {
				st.setLB(fl.ctx.recvKey+"."+f, min(k, lbSat))
			}
		}
	}
	for i, pobj := range n.Params {
		if pobj == nil {
			continue
		}
		key := fmt.Sprintf("v%p", pobj)
		if i < 64 {
			st.setPmark(key, 1<<uint(i))
		}
		if len(fl.ctx.declared) > 0 && isRandPointer(pobj.Type()) {
			set := make(streamSet, len(fl.ctx.declared))
			for _, name := range fl.ctx.declared {
				set[name] = &Trace{Pos: n.Pos(), What: fmt.Sprintf("*rand.Rand parameter of //rexlint:stream %s function", name), EntryPos: n.Pos()}
			}
			st.setStreams(key, set)
		}
	}
	return st
}

func (fl *vfFlow) Join(a, b *vfState) *vfState { return joinVFState(a, b) }
func (fl *vfFlow) Equal(a, b *vfState) bool    { return equalVFState(a, b) }

func (fl *vfFlow) Transfer(n ast.Node, in *vfState) *vfState {
	st := in.clone()
	fl.apply(n, st)
	return st
}

// apply mutates st with the effects of one straight-line node: call
// effects first (sanitizers, counter folds), then the statement's own
// assignment/taint semantics.
func (fl *vfFlow) apply(n ast.Node, st *vfState) {
	fl.callEffects(n, st)
	switch s := n.(type) {
	case *ast.AssignStmt:
		fl.assign(s, st)
	case *ast.IncDecStmt:
		if key, ok := fl.ctx.counterKeyOf(fl.vf, s.X); ok {
			if s.Tok == token.INC {
				st.setLB(key, satAdd(st.getLB(key), 1))
			} else {
				fl.lowerLB(st, key, 1)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" || i >= len(vs.Values) {
						continue
					}
					str, ord, marks := fl.taintOf(vs.Values[i], st)
					fl.writeTaint(st, name, str, ord, marks, true)
				}
			}
		}
	case *ast.RangeStmt:
		fl.rangeTaint(s, st)
	}
}

// lowerLB applies a decrement of c: in absolute mode the bound clamps at
// the invariant floor 0 (the checker reports the dip separately); in delta
// mode the offset goes negative.
func (fl *vfFlow) lowerLB(st *vfState, key string, c int) {
	v := satAdd(st.getLB(key), -c)
	if fl.mode == vfAbs && v < 0 {
		v = 0
	}
	st.setLB(key, v)
}

func (fl *vfFlow) assign(s *ast.AssignStmt, st *vfState) {
	info := fl.ctx.n.Pkg.Info
	tuple := len(s.Lhs) != len(s.Rhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if tuple {
			rhs = s.Rhs[0]
		} else {
			rhs = s.Rhs[i]
		}
		// Counter semantics.
		if key, ok := fl.ctx.counterKeyOf(fl.vf, lhs); ok {
			switch s.Tok {
			case token.ADD_ASSIGN:
				if c, isConst := constIntOf(info, rhs); isConst {
					if c >= 0 {
						st.setLB(key, satAdd(st.getLB(key), c))
					} else {
						fl.lowerLB(st, key, -c)
					}
				} else {
					fl.killCounter(st, key)
				}
			case token.SUB_ASSIGN:
				if c, isConst := constIntOf(info, rhs); isConst && c >= 0 {
					fl.lowerLB(st, key, c)
				} else {
					fl.killCounter(st, key)
				}
			case token.ASSIGN, token.DEFINE:
				switch {
				case isConstAssign(info, rhs):
					c, _ := constIntOf(info, rhs)
					if fl.mode == vfDelta {
						st.kill(key)
						st.setLB(key, 0)
					} else if c >= 0 {
						st.setLB(key, min(c, lbSat))
					} else {
						st.setLB(key, 0) // checker reports the negative constant
					}
				case isLenOrCap(info, rhs):
					if fl.mode == vfDelta {
						st.kill(key)
					}
					st.setLB(key, 0)
				default:
					if rk, rok := fl.ctx.counterKeyOf(fl.vf, rhs); rok {
						st.setLB(key, st.getLB(rk))
					} else {
						fl.killCounter(st, key)
					}
				}
			}
		}
		// Taint semantics.
		if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
			str, ord, marks := fl.taintOf(rhs, st)
			if fl.ctx.selectOrdered[s] && ord == nil {
				ord = &Trace{Pos: s.Pos(), What: "select arm completion order", EntryPos: s.Pos()}
			}
			fl.writeTaint(st, lhs, str, ord, marks, true)
		} else {
			str, ord, marks := fl.taintOf(rhs, st)
			fl.writeTaint(st, lhs, str, ord, marks, false)
		}
	}
}

// killCounter marks a counter's value unknown: bound 0 in absolute mode
// (the declared invariant floor), an untrackable delta in summary mode.
func (fl *vfFlow) killCounter(st *vfState, key string) {
	st.setLB(key, 0)
	if fl.mode == vfDelta {
		st.kill(key)
	}
}

// writeTaint updates the taint of an assignment target. Path targets get a
// strong update (descendant keys die with them) unless join is forced;
// index/deref targets join into their base path. A write into a map
// element absorbs order taint: the destination has no order to perturb, so
// copying a range's pairs into another map is order-insensitive.
func (fl *vfFlow) writeTaint(st *vfState, lhs ast.Expr, str streamSet, ord *Trace, marks uint64, strong bool) {
	info := fl.ctx.n.Pkg.Info
	target := ast.Unparen(lhs)
	for {
		if ix, ok := target.(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ord = nil
					marks = 0
				}
			}
			target, strong = ix.X, false
			continue
		}
		break
	}
	key, ok := exprKey(info, target)
	if !ok {
		return
	}
	if strong {
		for k := range st.streams {
			if k == key || strings.HasPrefix(k, key+".") {
				delete(st.streams, k)
			}
		}
		for k := range st.ordered {
			if k == key || strings.HasPrefix(k, key+".") {
				delete(st.ordered, k)
			}
		}
		for k := range st.pmark {
			if k == key || strings.HasPrefix(k, key+".") {
				delete(st.pmark, k)
			}
		}
		st.setStreams(key, str)
		st.setOrdered(key, ord)
		st.setPmark(key, marks)
		return
	}
	if len(str) > 0 {
		cur := st.streams[key]
		if cur == nil {
			cur = make(streamSet)
		}
		for n, tr := range str {
			if _, dup := cur[n]; !dup {
				cur[n] = tr
			}
		}
		st.setStreams(key, cur)
	}
	if ord != nil && st.ordered[key] == nil {
		st.setOrdered(key, ord)
	}
	if marks != 0 {
		st.setPmark(key, st.pmark[key]|marks)
	}
}

func (fl *vfFlow) rangeTaint(s *ast.RangeStmt, st *vfState) {
	info := fl.ctx.n.Pkg.Info
	t := info.TypeOf(s.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		tr := &Trace{Pos: s.Pos(), What: "map iteration order", EntryPos: s.Pos()}
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if v == nil {
				continue
			}
			if id, ok := v.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			fl.writeTaint(st, v, nil, tr, 0, true)
		}
		return
	}
	// Ranging over a slice, array, or channel hands each element to the
	// value variable: elements of a tainted container inherit its taint
	// (the index variable is just an int and stays clean).
	if s.Value == nil {
		return
	}
	if id, ok := s.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	str, ord, marks := fl.taintOf(s.X, st)
	fl.writeTaint(st, s.Value, str, ord, marks, true)
}

// callEffects applies the state changes of every call inside the node:
// sort sanitization, builtin copy propagation, and callee counter folds.
// Nested statement bodies are excluded — their calls are applied when the
// dataflow reaches their own blocks.
func (fl *vfFlow) callEffects(n ast.Node, st *vfState) {
	info := fl.ctx.n.Pkg.Info
	inspectHeader(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(info, call, "copy") && len(call.Args) == 2 {
			str, ord, marks := fl.taintOf(call.Args[1], st)
			fl.writeTaint(st, call.Args[0], str, ord, marks, false)
			return true
		}
		if isSanitizerCall(info, call) {
			for _, arg := range call.Args {
				key, ok := exprKey(info, unwrapConversion(info, arg))
				if !ok {
					continue
				}
				for k := range st.ordered {
					if k == key || strings.HasPrefix(k, key+".") {
						delete(st.ordered, k)
					}
				}
			}
			return true
		}
		site := fl.ctx.siteOf[call]
		if site == nil {
			return true
		}
		if site.Unknown {
			// A dynamic call could mutate any field-rooted counter; the
			// declared invariant floor is all that survives.
			for k := range st.lb {
				if strings.Contains(k, ".") {
					fl.killCounter(st, k)
				}
			}
			return true
		}
		if site.RecvExpr == nil || len(site.Callees) == 0 {
			return true
		}
		recvKey, ok := exprKey(info, site.RecvExpr)
		if !ok {
			return true
		}
		// Fold callee counter effects onto the receiver's fields. With
		// several candidates (interface dispatch) take the worst case.
		effects := map[string]*counterEffect{}
		for _, callee := range site.Callees {
			for f, ce := range fl.vf.summaries[callee].counters {
				cur, dup := effects[f]
				if !dup {
					cp := *ce
					effects[f] = &cp
					continue
				}
				if !ce.Known {
					cur.Known = false
				} else if cur.Known && ce.Delta < cur.Delta {
					cur.Delta = ce.Delta
				}
			}
		}
		fields := make([]string, 0, len(effects))
		for f := range effects {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			ce := effects[f]
			key := recvKey + "." + f
			if !ce.Known {
				fl.killCounter(st, key)
				continue
			}
			v := satAdd(st.getLB(key), ce.Delta)
			if fl.mode == vfAbs && v < 0 {
				// The callee proved its own body never dips below zero
				// from its declared entry; the caller keeps the floor.
				v = 0
			}
			st.setLB(key, v)
		}
		return true
	})
}

// Refine exploits branch conditions on counters in absolute mode:
// `if q.n > 0 { q.n-- }` proves the decrement.
func (fl *vfFlow) Refine(e Edge, f *vfState) *vfState {
	if fl.mode != vfAbs || e.Cond == nil {
		return f
	}
	cmp, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	info := fl.ctx.n.Pkg.Info
	key, okKey := fl.ctx.counterKeyOf(fl.vf, cmp.X)
	c, okC := constIntOf(info, cmp.Y)
	op := cmp.Op
	if !okKey || !okC {
		// Mirror c OP key.
		key, okKey = fl.ctx.counterKeyOf(fl.vf, cmp.Y)
		c, okC = constIntOf(info, cmp.X)
		if !okKey || !okC {
			return f
		}
		switch op {
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		}
	}
	if e.Neg {
		switch op {
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		}
	}
	lb := f.getLB(key)
	derived := lb
	switch op {
	case token.GTR:
		derived = c + 1
	case token.GEQ:
		derived = c
	case token.EQL:
		derived = c
	case token.NEQ:
		if lb == c {
			derived = c + 1
		}
	}
	if derived <= lb {
		return f
	}
	out := f.clone()
	out.setLB(key, min(derived, lbSat))
	return out
}

// taintOf evaluates the taint of an expression under the current state:
// stream taints, order taint, and parameter marks.
func (fl *vfFlow) taintOf(e ast.Expr, st *vfState) (streamSet, *Trace, uint64) {
	info := fl.ctx.n.Pkg.Info
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key, ok := exprKey(info, e); ok {
			return st.taintsAt(key)
		}
		return nil, nil, 0
	case *ast.StarExpr:
		return fl.taintOf(x.X, st)
	case *ast.UnaryExpr:
		return fl.taintOf(x.X, st)
	case *ast.BinaryExpr:
		return unionTaint3(fl.taintOf(x.X, st))(fl.taintOf(x.Y, st))
	case *ast.IndexExpr:
		return unionTaint3(fl.taintOf(x.X, st))(fl.taintOf(x.Index, st))
	case *ast.SliceExpr:
		return fl.taintOf(x.X, st)
	case *ast.TypeAssertExpr:
		return fl.taintOf(x.X, st)
	case *ast.CompositeLit:
		var str streamSet
		var ord *Trace
		var marks uint64
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			str, ord, marks = unionTaint3(str, ord, marks)(fl.taintOf(elt, st))
		}
		return str, ord, marks
	case *ast.CallExpr:
		return fl.callTaint(x, st)
	}
	return nil, nil, 0
}

// unionTaint3 curries a three-way taint union.
func unionTaint3(str streamSet, ord *Trace, marks uint64) func(streamSet, *Trace, uint64) (streamSet, *Trace, uint64) {
	return func(s2 streamSet, o2 *Trace, m2 uint64) (streamSet, *Trace, uint64) {
		if len(s2) > 0 {
			if str == nil {
				str = make(streamSet, len(s2))
			}
			for n, tr := range s2 {
				if _, ok := str[n]; !ok {
					str[n] = tr
				}
			}
		}
		if ord == nil {
			ord = o2
		}
		return str, ord, marks | m2
	}
}

// callTaint evaluates the taint of a call result.
func (fl *vfFlow) callTaint(call *ast.CallExpr, st *vfState) (streamSet, *Trace, uint64) {
	info := fl.ctx.n.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fl.taintOf(call.Args[0], st) // conversion T(x)
	}
	if isBuiltinCall(info, call, "append") {
		var str streamSet
		var ord *Trace
		var marks uint64
		for _, arg := range call.Args {
			str, ord, marks = unionTaint3(str, ord, marks)(fl.taintOf(arg, st))
		}
		return str, ord, marks
	}
	if isBuiltinCall(info, call, "len") || isBuiltinCall(info, call, "cap") {
		return nil, nil, 0
	}
	site := fl.ctx.siteOf[call]
	if site == nil || len(site.Callees) == 0 {
		if pkgPath, fn, ok := stdlibCallee(info, call); ok {
			switch pkgPath {
			case "maps":
				if fn == "Keys" || fn == "Values" || fn == "All" {
					return nil, &Trace{Pos: call.Pos(), What: "maps." + fn + " iteration order", EntryPos: call.Pos()}, 0
				}
			case "sort", "slices":
				return nil, nil, 0 // sanitized result
			case "fmt", "strings", "strconv", "bytes":
				// Formatting propagates ordering (and param marks), not
				// stream identity.
				var ord *Trace
				var marks uint64
				for _, arg := range call.Args {
					_, o, m := fl.taintOf(arg, st)
					if ord == nil {
						ord = o
					}
					marks |= m
				}
				return nil, ord, marks
			}
		}
		return nil, nil, 0
	}
	var str streamSet
	var ord *Trace
	var marks uint64
	for _, callee := range site.Callees {
		if fl.vf.dirs.sources[callee] {
			if name, ok := streamNameArg(info, call); ok {
				if str == nil {
					str = make(streamSet)
				}
				if _, dup := str[name]; !dup {
					str[name] = &Trace{Pos: call.Pos(), What: fmt.Sprintf("Stream(%q)", name), EntryPos: call.Pos()}
				}
			}
			continue
		}
		if fl.vf.dirs.canonical[callee] {
			continue // canonicalized result
		}
		sum := fl.vf.summaries[callee]
		for name, tr := range sum.returnStreams {
			if str == nil {
				str = make(streamSet)
			}
			if _, dup := str[name]; !dup {
				str[name] = wrapVia(tr, callee.Name(), call.Pos())
			}
		}
		if ord == nil && sum.returnsOrdered != nil {
			ord = wrapVia(sum.returnsOrdered, callee.Name(), call.Pos())
		}
		if sum.returnsParam != 0 {
			for i, arg := range call.Args {
				bit := min(i, 63)
				if i >= 64 || sum.returnsParam&(1<<uint(bit)) == 0 {
					continue
				}
				str, ord, marks = unionTaint3(str, ord, marks)(fl.taintOf(arg, st))
			}
		}
	}
	return str, ord, marks
}

// wrapVia extends a trace's blame chain with the callee it flowed through.
func wrapVia(tr *Trace, callee string, callPos token.Pos) *Trace {
	via := make([]string, 0, len(tr.Via)+1)
	via = append(via, callee)
	via = append(via, tr.Via...)
	return &Trace{Pos: tr.Pos, What: tr.What, Via: via, EntryPos: callPos}
}

// streamNameArg resolves the constant stream name of a streamsource call.
func streamNameArg(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// stdlibCallee resolves pkg.Fn calls to (import path, function name) for
// package-qualified callees outside the module. Method calls return false.
func stdlibCallee(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isSanitizerCall reports calls into sort or slices: afterwards the
// arguments are canonically ordered.
func isSanitizerCall(info *types.Info, call *ast.CallExpr) bool {
	pkgPath, _, ok := stdlibCallee(info, call)
	return ok && (pkgPath == "sort" || pkgPath == "slices")
}

// unwrapConversion strips a single conversion wrapper (sort.Sort(byName(v))).
func unwrapConversion(info *types.Info, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return e
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0]
	}
	return e
}

func constIntOf(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

func isConstAssign(info *types.Info, e ast.Expr) bool {
	_, ok := constIntOf(info, e)
	return ok
}

func isLenOrCap(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isBuiltinCall(info, call, "len") || isBuiltinCall(info, call, "cap")
}

// isRandPointer reports *math/rand.Rand.
func isRandPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "math/rand" && named.Obj().Name() == "Rand"
}

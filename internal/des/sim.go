package des

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"rexchange/internal/cluster"
	"rexchange/internal/ctl"
	"rexchange/internal/obs"
	"rexchange/internal/plan"
	"rexchange/internal/rng"
	"rexchange/internal/workload"
)

// Phase classifies a query completion relative to the run's migration
// activity: Before (no copy had started yet), During (a copy overlapped
// the query's lifetime), After (copies have happened, none overlapped).
type Phase int

// Migration phases.
const (
	PhaseBefore Phase = iota
	PhaseDuring
	PhaseAfter
	numPhases
)

// String names the phase; also the metrics label value.
func (p Phase) String() string {
	switch p {
	case PhaseBefore:
		return "before"
	case PhaseDuring:
		return "during"
	case PhaseAfter:
		return "after"
	default:
		return "phase(?)"
	}
}

// Config parameterizes the discrete-event simulator.
type Config struct {
	// Fanout is the number of shard legs sampled per query (weighted by
	// shard popularity, with replacement). 0 defaults to 8.
	Fanout int `json:"fanout"`
	// TargetUtil is the mean machine busy fraction at base trace
	// intensity; it calibrates service times against the cluster's load
	// scale. 0 defaults to 0.6.
	TargetUtil float64 `json:"target_util"`
	// Window is the arrival-generation and latency-measurement window in
	// seconds; align it with the controller's round window. 0 defaults
	// to 10.
	Window float64 `json:"window"`
	// DriftSigma is the per-window lognormal popularity walk applied to
	// shard weights (0 freezes relative popularity).
	DriftSigma float64 `json:"drift_sigma"`
	// Drag is the fractional service-speed loss on a machine per
	// migration copy streaming off it. 0 defaults to 0.3; negative
	// disables degradation.
	Drag float64 `json:"drag"`
	// CostSigma is the lognormal spread of per-query cost (0 = uniform
	// unit cost).
	CostSigma float64 `json:"cost_sigma"`
	// MaxQueue caps a machine's queue depth in legs; a query any of
	// whose legs meets a full queue is dropped whole. 0 = unbounded.
	MaxQueue int `json:"max_queue"`
	// TraceSample is the fraction of admitted queries traced end to end
	// (0 disables tracing, 1 traces everything). Sampling draws only
	// from the isolated rng "trace" sub-stream, so any setting leaves
	// offered load and arrival sequences bit-identical.
	TraceSample float64 `json:"trace_sample"`
	// Seed derives the workload, drift, and chaos sub-streams. Policy
	// and solver randomness live elsewhere, so changing them never
	// perturbs the workload.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns the standard simulation parameters.
func DefaultConfig() Config {
	return Config{Fanout: 8, TargetUtil: 0.6, Window: 10, CostSigma: 0.5, Drag: 0.3, Seed: 1}
}

// normalize fills defaults and validates.
func (cfg *Config) normalize() error {
	if cfg.Fanout == 0 {
		cfg.Fanout = 8
	}
	if cfg.Fanout < 0 {
		return fmt.Errorf("des: Fanout must be positive, got %d", cfg.Fanout)
	}
	if cfg.TargetUtil == 0 {
		cfg.TargetUtil = 0.6
	}
	if cfg.TargetUtil < 0 || cfg.TargetUtil >= 1 {
		return fmt.Errorf("des: TargetUtil must be in (0,1), got %g", cfg.TargetUtil)
	}
	if cfg.Window == 0 {
		cfg.Window = 10
	}
	if cfg.Window < 0 {
		return fmt.Errorf("des: Window must be positive, got %g", cfg.Window)
	}
	if cfg.Drag == 0 {
		cfg.Drag = 0.3
	}
	if cfg.Drag < 0 {
		cfg.Drag = 0
	}
	if cfg.Drag >= 1 {
		return fmt.Errorf("des: Drag must be below 1, got %g", cfg.Drag)
	}
	if cfg.MaxQueue < 0 {
		return fmt.Errorf("des: negative MaxQueue %d", cfg.MaxQueue)
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return fmt.Errorf("des: TraceSample must be in [0,1], got %g", cfg.TraceSample)
	}
	return nil
}

// query is one in-flight query: its arrival time and outstanding legs.
type query struct {
	arrive float64
	remain int32 //rexlint:nonneg
}

// Sim is the discrete-event cluster simulator. It implements ctl.Clock
// (Sleep advances the event heap to the target time), ctl.LoadSource
// (observed loads are the work actually routed per shard since the last
// snapshot), and ctl.MoveObserver (executor copies degrade their source
// machine and commits reroute subsequent queries) — so the unmodified
// controller, policy, solver, and executor run against simulated query
// traffic.
//
// All methods except Now must be called from the single control-loop
// goroutine; Now is safe for concurrent use (HTTP handlers).
type Sim struct {
	cfg Config
	tr  *workload.Trace

	mu  sync.Mutex
	now float64 // guarded by: mu

	// Routing and popularity state. home is the simulator's own shard →
	// machine map: it re-routes on committed moves only, independent of
	// the controller's planning copies.
	home     []cluster.MachineID
	weights  []float64
	cum      []float64 // prefix sums over weights, rebuilt per window
	wtotal   float64   // invariant Σweights, restored after each drift step
	machines []machine

	heap eventHeap
	qs   []query
	free []int32

	// workload draws arrivals, costs, and shard picks; drift walks the
	// popularity weights; the partitioned chaos stream is exported for
	// failure injection. Because each is an isolated sub-stream, adding
	// chaos or changing drift never perturbs workload generation.
	streams  *rng.Partitioned
	workload *rand.Rand
	drift    *rand.Rand

	picks []cluster.ShardID // per-arrival scratch, len = Fanout

	legUnit    float64 // Load-seconds per leg per unit cost
	serveScale float64 // service seconds per Load-second on a speed-1 idle machine

	// Migration overlap accounting for phase classification.
	copiesStarted int
	activeCopies  int //rexlint:nonneg
	lastCopyEnd   float64

	// LoadSource accumulators, reset by Next.
	srcLoad []float64
	srcFrom float64

	// Measurement-window accumulators, reset at each window boundary.
	windowIdx    int
	winLat       []float64
	winArrivals  int
	winCompleted int
	winDropped   int

	// Run-long per-phase latency records.
	lat     [numPhases][]float64
	drops   [numPhases]int
	arrived int
	events  uint64

	m       *simMetrics
	journal *obs.Journal

	// tracer samples queries from the isolated "trace" stream; traced
	// holds merge-tracking state per sampled in-flight query, keyed by
	// query slot (entries retire at completion, so slot reuse is safe).
	tracer *obs.Tracer
	traced map[int32]*tracedQuery
}

// New builds a simulator over the given placement and query trace. The
// placement is read once (assignment, machine speeds, shard base loads)
// and never written: the simulator keeps its own routing map and follows
// the live placement through MoveObserver commits.
//
//rexlint:stream workload drift
func New(cfg Config, p *cluster.Placement, tr *workload.Trace) (*Sim, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if p == nil || tr == nil || tr.Duration <= 0 {
		return nil, fmt.Errorf("des: placement and a trace with positive duration are required")
	}
	c := p.Cluster()
	if c.NumShards() == 0 || c.NumMachines() == 0 {
		return nil, fmt.Errorf("des: empty cluster")
	}
	s := &Sim{
		cfg:      cfg,
		tr:       tr,
		home:     p.Assignment(),
		weights:  make([]float64, c.NumShards()),
		cum:      make([]float64, c.NumShards()),
		machines: make([]machine, c.NumMachines()),
		streams:  rng.NewPartitioned(cfg.Seed),
		srcLoad:  make([]float64, c.NumShards()),
	}
	s.workload = s.streams.Stream(rng.StreamWorkload)
	s.drift = s.streams.Stream(rng.StreamDrift)
	s.picks = make([]cluster.ShardID, cfg.Fanout)
	totalSpeed := 0.0
	for i := range s.machines {
		s.machines[i].speed = c.Machines[i].Speed
		totalSpeed += c.Machines[i].Speed
	}
	total := 0.0
	for i := range c.Shards {
		w := c.Shards[i].Load
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("des: shard %d has load %g", i, w)
		}
		s.weights[i] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("des: cluster has no load to simulate")
	}
	for i := range s.home {
		if s.home[i] == cluster.Unassigned {
			return nil, fmt.Errorf("des: shard %d is unassigned", i)
		}
	}
	s.wtotal = total
	rate := tr.Rate()
	if rate <= 0 {
		return nil, fmt.Errorf("des: trace has no arrivals")
	}
	// Calibration: with Fanout popularity-weighted picks per query, a leg
	// carrying legUnit·cost Load-seconds makes the expected routed work
	// rate of shard s equal its base load, so the controller observes the
	// same load scale TraceDriftSource would feed it. serveScale then
	// converts Load-seconds to service seconds such that a machine at the
	// fleet-mean utilization idles (1-TargetUtil) of the time.
	meanCost := math.Exp(cfg.CostSigma * cfg.CostSigma / 2)
	s.legUnit = total / (rate * float64(cfg.Fanout) * meanCost)
	meanUtil := c.TotalLoad() / totalSpeed
	s.serveScale = cfg.TargetUtil / meanUtil
	s.rebuildCum()
	s.heap.Push(Event{At: 0, Kind: KindWindow})
	return s, nil
}

// AttachObs wires a metric registry and/or JSONL journal (either may be
// nil). Call before the first Sleep. When cfg.TraceSample > 0 this also
// builds the query tracer over the isolated "trace" rng stream; sampled
// spans go to the journal and, with a registry attached, the rex_trace_*
// families count them.
//
//rexlint:stream trace
func (s *Sim) AttachObs(reg *obs.Registry, j *obs.Journal) {
	if reg != nil {
		s.m = newSimMetrics(reg)
	}
	s.journal = j
	if s.cfg.TraceSample > 0 {
		s.tracer = obs.NewTracer(s.streams.Stream(rng.StreamTrace), s.cfg.TraceSample, j)
		s.tracer.AttachMetrics(reg)
		s.traced = make(map[int32]*tracedQuery)
	}
}

// Tracer returns the query tracer, nil unless AttachObs ran with
// cfg.TraceSample > 0. Campaign wiring hands it to ctl.Config.Tracer so
// controller and executor spans land in the same journal.
func (s *Sim) Tracer() *obs.Tracer { return s.tracer }

// Chaos returns the dedicated chaos sub-stream, for wiring deterministic
// copy-failure injection into ctl.ExecConfig.Failure without perturbing
// workload generation.
//
//rexlint:stream chaos
func (s *Sim) Chaos() *rand.Rand { return s.streams.Stream(rng.StreamChaos) }

// Now returns the current simulated time. Safe for concurrent use.
func (s *Sim) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// setNow publishes the clock position.
func (s *Sim) setNow(t float64) {
	s.mu.Lock()
	s.now = t
	s.mu.Unlock()
}

// Sleep advances simulated time by d seconds, running every event that
// falls strictly before the target; events scheduled exactly at the
// target run at the start of the next advance, so a load snapshot taken
// at a window boundary never sees the next window's arrivals.
func (s *Sim) Sleep(d float64) {
	if d <= 0 {
		return
	}
	target := s.Now() + d
	for s.heap.Len() > 0 && s.heap.Min().At < target {
		e := s.heap.Pop()
		s.setNow(e.At)
		s.events++
		switch e.Kind {
		case KindWindow:
			s.windowEvent(e.At)
		case KindArrival:
			s.arrivalEvent(e.At)
		case KindLegDone:
			s.legDoneEvent(e.At, e.M)
		}
	}
	s.setNow(target)
	if s.m != nil {
		s.m.syncLow(s)
	}
}

// Next implements ctl.LoadSource: per-shard work routed since the last
// snapshot, as a rate in cluster Load units. The simulator must have
// been advanced to t1 (the controller's serviceUntil guarantees this).
func (s *Sim) Next(t0, t1 float64) ([]float64, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("des: load window [%g,%g) is inverted", t0, t1)
	}
	span := t1 - s.srcFrom
	if span <= 0 {
		span = t1 - t0
	}
	out := make([]float64, len(s.srcLoad))
	for i, w := range s.srcLoad {
		out[i] = w / span
		s.srcLoad[i] = 0
	}
	s.srcFrom = t1
	return out, nil
}

// MoveStarted implements ctl.MoveObserver: an outbound copy starts
// degrading its source machine, and its identity joins the machine's
// blame candidates.
func (s *Sim) MoveStarted(mv plan.Move, ref ctl.MoveRef, at, eta float64) {
	s.machines[mv.From].copies++
	s.machines[mv.From].addRef(ref)
	s.copiesStarted++
	s.activeCopies++
	if s.m != nil {
		s.m.copiesActive.Set(float64(s.activeCopies))
	}
}

// MoveFinished implements ctl.MoveObserver: the copy's degradation ends,
// and a committed move re-routes the shard's future queries.
func (s *Sim) MoveFinished(mv plan.Move, ref ctl.MoveRef, at float64, committed bool) {
	s.machines[mv.From].copies--
	s.machines[mv.From].dropRef(ref)
	//rexlint:ignore nonneg every MoveFinished pairs with a prior MoveStarted on the single observer goroutine
	s.activeCopies--
	if at > s.lastCopyEnd {
		s.lastCopyEnd = at
	}
	if committed {
		s.home[mv.S] = mv.To
	}
	if s.m != nil {
		s.m.copiesActive.Set(float64(s.activeCopies))
	}
}

// windowEvent closes the measurement window ending at t, applies one
// popularity-drift step, and generates the next window's arrivals.
func (s *Sim) windowEvent(t float64) {
	if s.windowIdx > 0 {
		s.closeWindow(t)
	}
	if s.cfg.DriftSigma > 0 && s.windowIdx > 0 {
		s.driftStep()
	}
	for _, at := range s.tr.Arrivals(t, t+s.cfg.Window, s.workload) {
		s.heap.Push(Event{At: at, Kind: KindArrival})
	}
	s.windowIdx++
	s.heap.Push(Event{At: t + s.cfg.Window, Kind: KindWindow})
}

// closeWindow publishes the window's latency summary to the journal.
func (s *Sim) closeWindow(t float64) {
	if s.journal != nil {
		q := stats3(s.winLat)
		s.journal.Emit(obs.Event{
			T: t, Span: obs.SpanSim, Phase: obs.PhaseEnd, Round: s.windowIdx - 1,
			Sim: &obs.SimEvent{
				Window: s.windowIdx - 1, Arrivals: s.winArrivals,
				Completed: s.winCompleted, Dropped: s.winDropped,
				P50: q[0], P99: q[1], P999: q[2], Copies: s.activeCopies,
			},
		})
	}
	s.winLat = s.winLat[:0]
	s.winArrivals, s.winCompleted, s.winDropped = 0, 0, 0
}

// driftStep walks every shard weight by a lognormal factor and
// renormalizes so total popularity stays put while shares shift — the
// same drift model ctl.TraceDriftSource applies to load snapshots.
func (s *Sim) driftStep() {
	r := s.drift
	total := 0.0
	for i := range s.weights {
		s.weights[i] *= math.Exp(s.cfg.DriftSigma * r.NormFloat64())
		total += s.weights[i]
	}
	if total > 0 {
		scale := s.wtotal / total
		for i := range s.weights {
			s.weights[i] *= scale
		}
	}
	s.rebuildCum()
}

// rebuildCum refreshes the prefix sums used for weighted shard sampling.
func (s *Sim) rebuildCum() {
	acc := 0.0
	for i, w := range s.weights {
		acc += w
		s.cum[i] = acc
	}
}

// pickShard samples one shard proportional to current popularity.
func (s *Sim) pickShard() cluster.ShardID {
	total := s.cum[len(s.cum)-1]
	r := s.workload.Float64() * total
	return cluster.ShardID(sort.SearchFloat64s(s.cum, r))
}

// arrivalEvent fans one query out to Fanout sampled shard legs. The cost
// and shard picks come from the workload stream in arrival order, so the
// draw sequence is independent of queueing and policy dynamics.
func (s *Sim) arrivalEvent(t float64) {
	cost := 1.0
	if s.cfg.CostSigma > 0 {
		cost = workload.LogNormal(s.workload, 0, s.cfg.CostSigma)
	}
	picks := s.picks
	for i := range picks {
		picks[i] = s.pickShard()
	}
	work := s.legUnit * cost
	s.arrived++
	s.winArrivals++

	// Offered load is observed whether or not the query admits — the
	// controller must see the hot shard even while its machine sheds.
	for _, sh := range picks {
		s.srcLoad[sh] += work
	}

	if s.cfg.MaxQueue > 0 {
		for _, sh := range picks {
			if s.machines[s.home[sh]].depth() >= s.cfg.MaxQueue {
				s.drop(t)
				return
			}
		}
	}
	qi := s.allocQuery(t, int32(len(picks)))
	// Sampling happens after admission, from the isolated trace stream:
	// only queries that will complete (or die with the run) are traced,
	// and the decision can never perturb the workload draws above.
	var tq *tracedQuery
	if id, ok := s.tracer.Sample(); ok {
		tq = s.traceQuery(qi, id)
	}
	for i, sh := range picks {
		mi := s.home[sh]
		m := &s.machines[mi]
		var lt *legTrace
		if tq != nil {
			lt = s.traceEnqueue(tq, i, int(sh), int(mi), t, m)
		}
		m.push(leg{q: qi, work: work, tr: lt})
		if m.depth() == 1 {
			s.startService(t, int32(mi))
		}
	}
}

// drop records a whole-query drop in the phase it would have completed.
func (s *Sim) drop(t float64) {
	ph := s.classify(t)
	s.drops[ph]++
	s.winDropped++
	if s.m != nil {
		s.m.dropped.Inc()
	}
}

// allocQuery takes a query slot from the free list or grows the table.
func (s *Sim) allocQuery(t float64, legs int32) int32 {
	if n := len(s.free); n > 0 {
		qi := s.free[n-1]
		s.free = s.free[:n-1]
		s.qs[qi] = query{arrive: t, remain: legs}
		return qi
	}
	s.qs = append(s.qs, query{arrive: t, remain: legs})
	return int32(len(s.qs) - 1)
}

// startService begins serving the head leg of machine mi and schedules
// its completion at the current effective speed. Degradation applies at
// leg start: a copy that begins mid-service does not preempt.
func (s *Sim) startService(t float64, mi int32) {
	m := &s.machines[mi]
	l := m.front()
	l.state = LegRunning
	eff := m.effectiveSpeed(s.cfg.Drag)
	if l.tr != nil {
		l.tr.svcAt = t
		l.tr.effSvc = eff
		l.tr.copiesSvc = len(m.refs)
		if ref, ok := m.oldestRef(); ok {
			l.tr.refSvc = ref
		}
	}
	service := l.work * s.serveScale / eff
	s.heap.Push(Event{At: t + service, Kind: KindLegDone, Q: l.q, M: mi})
}

// legDoneEvent completes the head leg of machine m, merges it into its
// query, and starts the next queued leg.
func (s *Sim) legDoneEvent(t float64, mi int32) {
	m := &s.machines[mi]
	//rexlint:ignore nonneg the event heap holds one KindLegDone per startLeg, so the popped machine is non-empty
	l := m.pop()
	l.state = LegDone
	if l.tr != nil {
		s.traceLegDone(t, &l, m)
	}
	q := &s.qs[l.q]
	//rexlint:ignore nonneg remain was set to the leg count at arrival and each leg completes exactly once (statecheck pins LegRunning -> LegDone)
	q.remain--
	if q.remain == 0 {
		s.complete(t, l.q)
	}
	if m.depth() > 0 {
		s.startService(t, mi)
	}
}

// complete records the query's end-to-end latency (merge at the slowest
// leg) under its migration phase and frees the slot.
func (s *Sim) complete(t float64, qi int32) {
	q := &s.qs[qi]
	latency := t - q.arrive
	ph := s.classify(q.arrive)
	s.lat[ph] = append(s.lat[ph], latency)
	s.winLat = append(s.winLat, latency)
	s.winCompleted++
	s.free = append(s.free, qi)
	tq := s.traced[qi]
	if tq != nil {
		s.traceComplete(t, qi, tq, q.arrive, ph)
	}
	if s.m != nil {
		if tq != nil {
			s.m.observeTraced(ph, latency, tq.id)
		} else {
			s.m.observe(ph, latency)
		}
	}
}

// classify assigns a migration phase to a query that arrived at `arrive`
// and is ending now: During when any copy overlapped its lifetime.
func (s *Sim) classify(arrive float64) Phase {
	switch {
	case s.copiesStarted == 0:
		return PhaseBefore
	case s.activeCopies > 0 || s.lastCopyEnd >= arrive:
		return PhaseDuring
	default:
		return PhaseAfter
	}
}

// Events returns the number of simulator events processed so far.
func (s *Sim) Events() uint64 { return s.events }

// InFlight returns the number of queries currently outstanding.
func (s *Sim) InFlight() int { return len(s.qs) - len(s.free) }

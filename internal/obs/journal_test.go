package obs

import (
	"strings"
	"testing"
)

// TestJournalPinnedSchema pins the JSONL encoding of each span kind: the
// journal is a wire format consumed by rexwatch and external tooling, so
// field names and omission rules must not drift.
func TestJournalPinnedSchema(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	j.Emit(Event{T: 10, Span: SpanRound, Phase: PhaseBegin, Round: 2, Imbalance: 1.5})
	j.Emit(Event{T: 10, Span: SpanSolve, Phase: PhaseEnd, Round: 2, Outcome: OutcomeOK,
		Objective: 1.125, Moves: 7, Seconds: 0.5})
	j.Emit(Event{T: 11, Span: SpanMove, Phase: PhaseBegin, Round: 2,
		Move: &MoveEvent{Seq: 0, Shard: 3, From: 0, To: 4, Attempt: 1}})
	j.Emit(Event{T: 12.5, Span: SpanMove, Phase: PhaseEnd, Round: 2, Outcome: OutcomeAborted,
		Seconds: 1.5, Move: &MoveEvent{Seq: 0, Shard: 3, From: 0, To: 4, Attempt: 1}})
	j.Emit(Event{T: 20, Span: SpanSim, Phase: PhaseEnd, Round: 2,
		Sim: &SimEvent{Window: 2, Arrivals: 100, Completed: 98, Dropped: 1, P50: 0.01, P99: 0.25, P999: 0.5, Copies: 3}})
	j.Emit(Event{T: 21.5, Span: SpanTrace, Phase: PhaseEnd, Round: 2,
		Trace: &TraceEvent{ID: "00000000000000ab", Span: "00000000000000cd", Parent: "00000000000000ef",
			Op: OpLeg, Start: 20.25, Machine: 4, Shard: 9, Seq: -1,
			Blocked: &BlameRef{Round: 2, Seq: 5, Machine: 4, Kind: BlameQueue, Delay: 0.125}}})
	j.Emit(Event{T: 22, Span: SpanTrace, Phase: PhaseEnd, Round: 2,
		Trace: &TraceEvent{ID: "00000000000000ab", Span: "00000000000000aa",
			Op: OpQuery, Start: 20, Machine: -1, Shard: -1, Seq: -1, Mig: "during"}})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":10,"span":"round","phase":"begin","round":2,"imbalance":1.5}
{"t":10,"span":"solve","phase":"end","round":2,"outcome":"ok","objective":1.125,"moves":7,"seconds":0.5}
{"t":11,"span":"move","phase":"begin","round":2,"move":{"seq":0,"shard":3,"from":0,"to":4,"attempt":1}}
{"t":12.5,"span":"move","phase":"end","round":2,"outcome":"aborted","seconds":1.5,"move":{"seq":0,"shard":3,"from":0,"to":4,"attempt":1}}
{"t":20,"span":"sim","phase":"end","round":2,"sim":{"window":2,"arrivals":100,"completed":98,"dropped":1,"p50":0.01,"p99":0.25,"p999":0.5,"copies":3}}
{"t":21.5,"span":"trace","phase":"end","round":2,"trace":{"id":"00000000000000ab","sid":"00000000000000cd","pid":"00000000000000ef","op":"leg","start":20.25,"machine":4,"shard":9,"seq":-1,"blocked_by":{"round":2,"seq":5,"machine":4,"kind":"queue","delay":0.125}}}
{"t":22,"span":"trace","phase":"end","round":2,"trace":{"id":"00000000000000ab","sid":"00000000000000aa","op":"query","start":20,"machine":-1,"shard":-1,"seq":-1,"mig":"during"}}
`
	if got := b.String(); got != want {
		t.Fatalf("journal schema drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if j.Len() != 7 {
		t.Fatalf("Len = %d, want 7", j.Len())
	}
}

// TestJournalRoundtrip writes events and reads them back.
func TestJournalRoundtrip(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	evs := []Event{
		{T: 1, Span: SpanRound, Phase: PhaseBegin, Round: 0},
		{T: 2, Span: SpanRound, Phase: PhaseEnd, Round: 0, Outcome: OutcomeOK, Imbalance: 1.2},
		{T: 2, Span: SpanMove, Phase: PhaseBegin, Round: 0, Move: &MoveEvent{Seq: 1, Shard: 9, From: 2, To: 0}},
	}
	for _, ev := range evs {
		j.Emit(ev)
	}
	got, err := ReadJournal(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, want %d", len(got), len(evs))
	}
	if got[2].Move == nil || got[2].Move.Shard != 9 || got[2].Move.To != 0 {
		t.Fatalf("move payload corrupted: %+v", got[2].Move)
	}
	if got[1].Imbalance != 1.2 || got[1].Outcome != OutcomeOK {
		t.Fatalf("round payload corrupted: %+v", got[1])
	}
}

// TestReadJournalRejectsMalformed checks error reporting with line
// numbers.
func TestReadJournalRejectsMalformed(t *testing.T) {
	_, err := ReadJournal(strings.NewReader("{\"t\":1,\"span\":\"round\",\"phase\":\"begin\",\"round\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 parse failure", err)
	}
	_, err = ReadJournal(strings.NewReader("{\"t\":1}\n"))
	if err == nil || !strings.Contains(err.Error(), "missing span/phase") {
		t.Fatalf("err = %v, want missing span/phase", err)
	}
	ok := "{\"t\":1,\"span\":\"round\",\"phase\":\"begin\",\"round\":0}\n"
	_, err = ReadJournal(strings.NewReader(ok + ok + "{\"t\":2,\"span\":\"bogus\",\"phase\":\"end\",\"round\":0}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "unknown span kind \"bogus\"") {
		t.Fatalf("err = %v, want unknown span kind at line 3", err)
	}
	_, err = ReadJournal(strings.NewReader(ok + "{\"t\":2,\"span\":\"trace\",\"phase\":\"end\",\"round\":0}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "trace span without trace payload") {
		t.Fatalf("err = %v, want missing trace payload at line 2", err)
	}
	// A truncated final line is malformed JSON, reported with its number.
	_, err = ReadJournal(strings.NewReader(ok + "{\"t\":3,\"span\":\"tr"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want truncated line 2 failure", err)
	}
}

// TestJournalStickyError checks that a failing writer disables the
// journal rather than surfacing per-event errors.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, strings.NewReader("").UnreadByte() // any non-nil error
}

func TestJournalStickyError(t *testing.T) {
	fw := &failWriter{}
	j := NewJournal(fw)
	j.Emit(Event{T: 1, Span: SpanRound, Phase: PhaseBegin})
	j.Emit(Event{T: 2, Span: SpanRound, Phase: PhaseEnd})
	if j.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if fw.n != 1 {
		t.Fatalf("writer called %d times, want 1 (sticky short-circuit)", fw.n)
	}
	if j.Len() != 0 {
		t.Fatalf("Len = %d, want 0", j.Len())
	}
}

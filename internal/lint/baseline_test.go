package lint

import (
	"go/token"
	"strings"
	"testing"
)

func bdiag(file, analyzer, msg string, line int) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

// TestBaselineRoundTrip pins the ratchet semantics: a written baseline
// absorbs exactly the diagnostics it recorded — matched by file, analyzer,
// and message but not line, and duplicates only up to their count — while
// anything new stays fatal.
func TestBaselineRoundTrip(t *testing.T) {
	accepted := []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: make", 10),
		bdiag("a.go", "alloccheck", "allocates: make", 20), // same key twice
		bdiag("b.go", "purity", "mutates its receiver", 5),
	}
	var buf strings.Builder
	if err := WriteBaseline(&buf, accepted); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	current := []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: make", 14),        // drifted line: absorbed
		bdiag("a.go", "alloccheck", "allocates: make", 99),        // second duplicate: absorbed
		bdiag("a.go", "alloccheck", "allocates: make", 120),       // third occurrence: fresh
		bdiag("b.go", "purity", "mutates its receiver", 5),        // absorbed
		bdiag("c.go", "sharecheck", "captured by a goroutine", 3), // new file: fresh
	}
	fresh, absorbed := base.Filter(current)
	if absorbed != 3 {
		t.Errorf("absorbed = %d, want 3", absorbed)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 entries", fresh)
	}
	if fresh[0].Pos.Line != 120 || fresh[1].Pos.Filename != "c.go" {
		t.Errorf("fresh = %v, want the third duplicate and the c.go finding", fresh)
	}

	// A nil baseline is a no-op filter.
	var nilBase *Baseline
	fresh, absorbed = nilBase.Filter(current)
	if absorbed != 0 || len(fresh) != len(current) {
		t.Errorf("nil baseline filtered: fresh=%d absorbed=%d", len(fresh), absorbed)
	}
}

// TestBaselineNewAnalyzerGuard pins the -write-baseline refusal semantics:
// rewriting a baseline must not silently absorb findings from an analyzer
// that has no entry in the existing file — exactly the analyzer a same-PR
// change would be trying to ratchet in with zero enforced findings.
func TestBaselineNewAnalyzerGuard(t *testing.T) {
	var buf strings.Builder
	if err := WriteBaseline(&buf, []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: make", 10),
		bdiag("b.go", "purity", "mutates its receiver", 5),
	}); err != nil {
		t.Fatal(err)
	}
	old, err := ReadBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := old.Analyzers(); len(got) != 2 || got[0] != "alloccheck" || got[1] != "purity" {
		t.Fatalf("Analyzers() = %v, want [alloccheck purity]", got)
	}

	current := []Diagnostic{
		bdiag("a.go", "alloccheck", "allocates: append", 11), // known analyzer, new finding: fine
		bdiag("c.go", "streamflow", "draws undeclared stream", 3),
		bdiag("c.go", "nonneg", "decrement at proven lower bound 0", 9),
		bdiag("d.go", "nonneg", "decrement cannot be proven", 4), // repeated analyzer reported once
	}
	fresh := NewAnalyzerNames(old, current)
	if len(fresh) != 2 || fresh[0] != "nonneg" || fresh[1] != "streamflow" {
		t.Fatalf("NewAnalyzerNames = %v, want [nonneg streamflow]", fresh)
	}

	// Only known analyzers reporting → nothing to refuse.
	if fresh := NewAnalyzerNames(old, current[:1]); len(fresh) != 0 {
		t.Fatalf("NewAnalyzerNames = %v, want none", fresh)
	}

	// An empty baseline (first write) knows no analyzers; callers guard on
	// the file existing, but the helper itself reports everything new.
	empty, err := ReadBaseline(strings.NewReader("# empty\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Analyzers(); len(got) != 0 {
		t.Fatalf("empty Analyzers() = %v, want none", got)
	}
}

// TestBaselineRejectsMalformedLines pins that a corrupt baseline fails
// loudly instead of silently accepting everything.
func TestBaselineRejectsMalformedLines(t *testing.T) {
	_, err := ReadBaseline(strings.NewReader("# comment ok\n\nnot a record\n"))
	if err == nil || !strings.Contains(err.Error(), "baseline line 3") {
		t.Fatalf("err = %v, want malformed-line error naming line 3", err)
	}
}

package workload

import (
	"bytes"
	"strings"
	"testing"

	"rexchange/internal/cluster"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 8
	cfg.Shards = 30
	cfg.Replicas = 2
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, sbuf bytes.Buffer
	if err := SaveSnapshot(inst.Placement, &mbuf, &sbuf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&mbuf, &sbuf)
	if err != nil {
		t.Fatal(err)
	}
	c, gc := inst.Cluster, got.Cluster()
	if gc.NumMachines() != c.NumMachines() || gc.NumShards() != c.NumShards() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d",
			gc.NumMachines(), gc.NumShards(), c.NumMachines(), c.NumShards())
	}
	for i := range c.Machines {
		if gc.Machines[i] != c.Machines[i] {
			t.Errorf("machine %d: %+v vs %+v", i, gc.Machines[i], c.Machines[i])
		}
	}
	for i := range c.Shards {
		if gc.Shards[i] != c.Shards[i] {
			t.Errorf("shard %d: %+v vs %+v", i, gc.Shards[i], c.Shards[i])
		}
	}
	for s := 0; s < c.NumShards(); s++ {
		if got.Home(cluster.ShardID(s)) != inst.Placement.Home(cluster.ShardID(s)) {
			t.Errorf("shard %d home changed", s)
		}
	}
}

func TestSnapshotFilesRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 4
	cfg.Shards = 10
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mp, sp := dir+"/machines.csv", dir+"/shards.csv"
	if err := SaveSnapshotFiles(inst.Placement, mp, sp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFiles(mp, sp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cluster().NumShards() != 10 {
		t.Error("file round trip lost shards")
	}
	if _, err := LoadSnapshotFiles(mp+".missing", sp); err == nil {
		t.Error("expected missing-file error")
	}
	if _, err := LoadSnapshotFiles(mp, sp+".missing"); err == nil {
		t.Error("expected missing-file error")
	}
}

func TestSnapshotPartialAssignment(t *testing.T) {
	machines := "id,name,mem,disk,net,speed\n0,m0,10,10,10,1\n"
	shards := "id,name,mem,disk,net,load,group,machine\n" +
		"0,s0,1,1,1,2,0,0\n" +
		"1,s1,1,1,1,3,0,-1\n"
	p, err := LoadSnapshot(strings.NewReader(machines), strings.NewReader(shards))
	if err != nil {
		t.Fatal(err)
	}
	if p.Home(1) != cluster.Unassigned {
		t.Errorf("shard 1 home = %d, want unassigned", p.Home(1))
	}
	if p.UnassignedCount() != 1 {
		t.Errorf("unassigned = %d", p.UnassignedCount())
	}
}

func TestSnapshotMalformed(t *testing.T) {
	goodM := "id,name,mem,disk,net,speed\n0,m0,10,10,10,1\n"
	goodS := "id,name,mem,disk,net,load,group,machine\n0,s0,1,1,1,2,0,0\n"
	cases := []struct {
		name, machines, shards string
	}{
		{"bad machine header", "nope,name,mem,disk,net,speed\n", goodS},
		{"short machine header", "id,name\n", goodS},
		{"bad machine id order", "id,name,mem,disk,net,speed\n5,m0,10,10,10,1\n", goodS},
		{"bad machine float", "id,name,mem,disk,net,speed\n0,m0,x,10,10,1\n", goodS},
		{"bad shard header", goodM, "id,nope\n"},
		{"bad shard id order", goodM, "id,name,mem,disk,net,load,group,machine\n3,s0,1,1,1,2,0,0\n"},
		{"bad shard float", goodM, "id,name,mem,disk,net,load,group,machine\n0,s0,x,1,1,2,0,0\n"},
		{"bad group", goodM, "id,name,mem,disk,net,load,group,machine\n0,s0,1,1,1,2,x,0\n"},
		{"bad machine ref", goodM, "id,name,mem,disk,net,load,group,machine\n0,s0,1,1,1,2,0,x\n"},
		{"out of range machine ref", goodM, "id,name,mem,disk,net,load,group,machine\n0,s0,1,1,1,2,0,7\n"},
		{"empty machines", "", goodS},
		{"negative speed", "id,name,mem,disk,net,speed\n0,m0,10,10,10,-1\n", goodS},
	}
	for _, tc := range cases {
		_, err := LoadSnapshot(strings.NewReader(tc.machines), strings.NewReader(tc.shards))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

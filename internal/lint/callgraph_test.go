package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rexchange/internal/lint"
	"rexchange/internal/lint/linttest"
)

// loadSnippet typechecks one synthetic package and builds its
// interprocedural program.
func loadSnippet(t *testing.T, name, src string) (*lint.Program, *lint.Package) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := linttest.NewLoader(t)
	pkg, err := loader.LoadDir(dir, "snippet/"+name)
	if err != nil {
		t.Fatalf("load snippet %s: %v", name, err)
	}
	return lint.NewProgram([]*lint.Package{pkg}), pkg
}

// nodeByName finds a function node by its rendered name.
func nodeByName(t *testing.T, prog *lint.Program, pkg *lint.Package, name string) *lint.FuncNode {
	t.Helper()
	var names []string
	for _, n := range prog.NodesOf(pkg) {
		if n.Name() == name {
			return n
		}
		names = append(names, n.Name())
	}
	t.Fatalf("no node named %q; have %s", name, strings.Join(names, ", "))
	return nil
}

// calleeNames renders the resolved callees of every call site in n,
// sorted per site, as "a,b; c" for comparison.
func calleeNames(prog *lint.Program, n *lint.FuncNode) []string {
	var out []string
	for _, site := range prog.EffectiveCalls(n) {
		if site.Std != nil || site.Unknown {
			continue
		}
		var names []string
		for _, c := range site.Callees {
			names = append(names, c.Name())
		}
		out = append(out, strings.Join(names, ","))
	}
	return out
}

// TestCallGraphResolution pins how the call graph resolves the dispatch
// shapes the summary engine depends on: static calls, interface methods
// (module-declared interfaces only), method values, and closures used as
// callbacks. Each case states the expected callee lists per call site in
// source order.
func TestCallGraphResolution(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fn   string   // node under inspection
		want []string // per-site resolved callee names, source order
	}{
		{
			name: "static",
			src: `package p
func a() { b(); c() }
func b() {}
func c() {}
`,
			fn:   "p.a",
			want: []string{"p.b", "p.c"},
		},
		{
			name: "interface_dispatch",
			src: `package p
type runner interface{ run() }
type fast struct{}
func (fast) run() {}
type slow struct{}
func (*slow) run() {}
func drive(r runner) { r.run() }
`,
			fn:   "p.drive",
			want: []string{"(p.fast).run,(p.slow).run"},
		},
		{
			name: "method_value",
			src: `package p
type box struct{ n int }
func (b *box) poke() { b.n++ }
func use(b *box) {
	f := b.poke
	f()
}
`,
			fn:   "p.use",
			want: []string{"(p.box).poke"},
		},
		{
			name: "closure_callback",
			src: `package p
func apply(f func() int) int { return f() }
func caller() int {
	n := 1
	return apply(func() int { return n })
}
`,
			fn:   "p.caller",
			want: []string{"p.apply", "func literal (line 5)"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, pkg := loadSnippet(t, tc.name, tc.src)
			n := nodeByName(t, prog, pkg, tc.fn)
			got := calleeNames(prog, n)
			if len(got) != len(tc.want) {
				t.Fatalf("call sites = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("site %d resolved to %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestSummaryFixpoint pins effect propagation through the bottom-up solve:
// effects cross recursion cycles, interface dispatch, and method values,
// and the fixpoint terminates on self-referential summaries.
func TestSummaryFixpoint(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		fn      string
		wantSet uint16 // bits that must be set
		wantClr uint16 // bits that must be clear
	}{
		{
			name: "recursion_clean",
			src: `package p
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
`,
			fn:      "p.even",
			wantClr: lint.EffAlloc | lint.EffGlobal | lint.EffUnknown,
		},
		{
			name: "effect_crosses_cycle",
			src: `package p
import "time"
func a(n int) {
	if n > 0 {
		b(n - 1)
	}
}
func b(n int) {
	_ = time.Now()
	a(n)
}
`,
			fn:      "p.a",
			wantSet: lint.EffClock,
		},
		{
			name: "interface_effect_union",
			src: `package p
var hits int
type op interface{ do() }
type pureOp struct{}
func (pureOp) do() {}
type countOp struct{}
func (countOp) do() { hits++ }
func run(o op) { o.do() }
`,
			fn:      "p.run",
			wantSet: lint.EffGlobal,
		},
		{
			name: "alloc_through_method_value",
			src: `package p
type maker struct{}
func (maker) grow(xs []int) []int { return append(xs, 1) }
func use(m maker, xs []int) []int {
	f := m.grow
	return f(xs)
}
`,
			fn:      "p.use",
			wantSet: lint.EffAlloc,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, pkg := loadSnippet(t, tc.name, tc.src)
			sum := prog.SummaryOf(nodeByName(t, prog, pkg, tc.fn))
			if got := sum.Mask & tc.wantSet; got != tc.wantSet {
				t.Errorf("mask %#x missing wanted bits %#x", sum.Mask, tc.wantSet&^got)
			}
			if got := sum.Mask & tc.wantClr; got != 0 {
				t.Errorf("mask %#x has forbidden bits %#x", sum.Mask, got)
			}
		})
	}
}

// TestUnusedTransferDirective pins that a //rexlint:transfer which
// sanctions nothing is itself reported, while a consumed one stays silent.
func TestUnusedTransferDirective(t *testing.T) {
	src := `package p

//rexlint:owned
type Box struct{ n int }

var keep *Box

func used(b *Box) {
	//rexlint:transfer the global takes ownership
	keep = b
}

func unused() int {
	//rexlint:transfer nothing escapes here
	return 1
}
`
	prog, pkg := loadSnippet(t, "transfers", src)
	diags, err := lint.RunAnalyzersIn(prog, pkg, []*lint.Analyzer{lint.ShareCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one unused-transfer", diags)
	}
	if !strings.Contains(diags[0].Message, "unused rexlint:transfer") {
		t.Errorf("diagnostic %q, want unused rexlint:transfer", diags[0].Message)
	}
	if want := 14; diags[0].Pos.Line != want {
		t.Errorf("reported at line %d, want %d (the unused directive)", diags[0].Pos.Line, want)
	}
}

package core

import (
	"math"
	"sort"

	"rexchange/internal/cluster"
)

// errIdentityPlan is a defensive sentinel; see state.finish.
var errIdentityPlan = errorString("core: internal error: identity reassignment failed to plan")

type errorString string

func (e errorString) Error() string { return string(e) }

// destroyRandom removes q uniformly random shards.
func (st *state) destroyRandom(q int) {
	n := st.cur.Cluster().NumShards()
	// partial Fisher-Yates over shard IDs
	ids := make([]cluster.ShardID, n)
	for i := range ids {
		ids[i] = cluster.ShardID(i)
	}
	for i := 0; i < q && i < n; i++ {
		j := i + st.rng.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
		st.removeToPool(ids[i])
	}
}

// destroyWorst repeatedly removes the highest-load shard from the machine
// with the highest utilization — directly attacking the objective.
func (st *state) destroyWorst(q int) {
	c := st.cur.Cluster()
	for i := 0; i < q; i++ {
		worst := cluster.Unassigned
		worstU := -1.0
		for m := 0; m < c.NumMachines(); m++ {
			id := cluster.MachineID(m)
			if st.cur.IsVacant(id) {
				continue
			}
			if u := st.cur.Utilization(id); u > worstU {
				worst, worstU = id, u
			}
		}
		if worst == cluster.Unassigned {
			return
		}
		var hot cluster.ShardID = -1
		hotLoad := -1.0
		st.cur.EachShardOn(worst, func(s cluster.ShardID) {
			if c.Shards[s].Load > hotLoad {
				hot, hotLoad = s, c.Shards[s].Load
			}
		})
		if hot < 0 {
			return
		}
		st.removeToPool(hot)
	}
}

// destroyRelated is Shaw removal: a random seed shard plus the q−1 shards
// most similar to it in (load, static footprint), with a bonus for sharing
// the seed's machine. Removing related shards together lets repair
// recombine them more freely than unrelated random picks.
func (st *state) destroyRelated(q int) {
	c := st.cur.Cluster()
	n := c.NumShards()
	if n == 0 || q <= 0 {
		return
	}
	seed := cluster.ShardID(st.rng.Intn(n))
	seedSh := &c.Shards[seed]
	seedHome := st.cur.Home(seed)

	loadScale := maxShardLoad(c)
	staticScale := maxShardStatic(c)

	type scored struct {
		s    cluster.ShardID
		dist float64
	}
	all := make([]scored, 0, n)
	for i := 0; i < n; i++ {
		s := cluster.ShardID(i)
		if s == seed {
			continue
		}
		sh := &c.Shards[i]
		d := 0.0
		if loadScale > 0 {
			d += math.Abs(sh.Load-seedSh.Load) / loadScale
		}
		if staticScale > 0 {
			d += sh.Static.Dist2(seedSh.Static) / staticScale
		}
		if st.cur.Home(s) != seedHome {
			d += 0.3
		}
		all = append(all, scored{s, d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].s < all[j].s
	})
	st.removeToPool(seed)
	for i := 0; i < q-1 && i < len(all); i++ {
		st.removeToPool(all[i].s)
	}
}

// destroyDrain empties one machine entirely, making it returnable as
// compensation. It targets lightly loaded machines with few shards; if no
// machine qualifies (all host more than q+4 shards), it falls back to
// random removal so the iteration still perturbs something.
func (st *state) destroyDrain(q int) {
	c := st.cur.Cluster()
	limit := q + 4
	type cand struct {
		m     cluster.MachineID
		count int
		util  float64
	}
	var cands []cand
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		cnt := st.cur.Count(id)
		if cnt == 0 || cnt > limit {
			continue
		}
		cands = append(cands, cand{id, cnt, st.cur.Utilization(id)})
	}
	if len(cands) == 0 {
		st.destroyRandom(q)
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].m < cands[j].m
	})
	// pick among the 4 easiest-to-drain machines for diversification
	pick := cands[st.rng.Intn(min(4, len(cands)))]
	for _, s := range st.cur.ShardsOn(pick.m) {
		st.removeToPool(s)
	}
}

// removeToPool unassigns s and records it for repair.
func (st *state) removeToPool(s cluster.ShardID) {
	if st.cur.Home(s) == cluster.Unassigned {
		return
	}
	if err := st.cur.Remove(s); err == nil {
		st.pool = append(st.pool, s)
	}
}

func maxShardLoad(c *cluster.Cluster) float64 {
	m := 0.0
	for i := range c.Shards {
		if c.Shards[i].Load > m {
			m = c.Shards[i].Load
		}
	}
	return m
}

func maxShardStatic(c *cluster.Cluster) float64 {
	m := 0.0
	for i := range c.Shards {
		if d := c.Shards[i].Static.Norm2(); d > m {
			m = d
		}
	}
	return m
}

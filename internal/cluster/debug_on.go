//go:build debugasserts

package cluster

// DebugAsserts gates the runtime invariant hooks sprinkled through the
// solver, planner, and simulator. Build with -tags debugasserts to turn
// every destroy/repair step and applied move into a full invariant check;
// the default build compiles the hooks away entirely.
const DebugAsserts = true

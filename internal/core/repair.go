package core

import (
	"math"
	"sort"

	"rexchange/internal/cluster"
)

// canInsert reports whether shard s may be placed on machine m: static
// capacity must hold, and — the resource-exchange contract — occupying a
// currently vacant machine is allowed only while more than K machines are
// vacant, so that K can still be returned.
func (st *state) canInsert(s cluster.ShardID, m cluster.MachineID) bool {
	if st.cur.IsVacant(m) && st.cur.NumVacant() <= st.k {
		return false
	}
	return st.cur.CanPlace(s, m)
}

// insertCost is the utilization machine m would reach after hosting s —
// the greedy criterion that directly minimizes the makespan objective.
func (st *state) insertCost(s cluster.ShardID, m cluster.MachineID) float64 {
	c := st.cur.Cluster()
	return (st.cur.Load(m) + c.Shards[s].Load) / c.Machines[m].Speed
}

// bestMachineFor scans all machines for the cheapest feasible insertion of
// s, breaking cost ties toward the machine with more static slack (to keep
// future insertions feasible). Returns Unassigned when nothing fits.
func (st *state) bestMachineFor(s cluster.ShardID) (cluster.MachineID, float64) {
	c := st.cur.Cluster()
	best := cluster.Unassigned
	bestCost := math.Inf(1)
	bestSlack := -1.0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if !st.canInsert(s, id) {
			continue
		}
		cost := st.insertCost(s, id)
		if cost < bestCost-1e-12 {
			best, bestCost = id, cost
			bestSlack = st.cur.Free(id).MaxDim()
		} else if cost <= bestCost+1e-12 {
			if slack := st.cur.Free(id).MaxDim(); slack > bestSlack {
				best, bestSlack = id, slack
			}
		}
	}
	return best, bestCost
}

// repairGreedy inserts the pool hardest-first (largest load, then largest
// static footprint) at each shard's cheapest feasible machine. Returns
// false when some shard fits nowhere (caller restores the snapshot).
func (st *state) repairGreedy() bool {
	c := st.cur.Cluster()
	st.poolSorter.a, st.poolSorter.c = st.pool, c
	sort.Sort(&st.poolSorter)
	for _, s := range st.pool {
		m, _ := st.bestMachineFor(s)
		if m == cluster.Unassigned {
			return false
		}
		if err := st.cur.Place(s, m); err != nil {
			return false
		}
	}
	return true
}

// poolSorter orders the repair pool hardest-first: descending load, then
// descending maximum static dimension, then ascending shard ID. Pointer
// receiver so repairGreedy sorts without a per-call closure allocation.
type poolSorter struct {
	a []cluster.ShardID
	c *cluster.Cluster
}

func (p *poolSorter) Len() int      { return len(p.a) }
func (p *poolSorter) Swap(i, j int) { p.a[i], p.a[j] = p.a[j], p.a[i] }
func (p *poolSorter) Less(i, j int) bool {
	a, b := &p.c.Shards[p.a[i]], &p.c.Shards[p.a[j]]
	if a.Load > b.Load {
		return true
	}
	if a.Load < b.Load {
		return false
	}
	am, bm := a.Static.MaxDim(), b.Static.MaxDim()
	if am > bm {
		return true
	}
	if am < bm {
		return false
	}
	return p.a[i] < p.a[j]
}

// bestTwoMachinesFor is the full-fleet fallback scan for repairRegret: like
// bestMachineFor it returns the cheapest feasible machine (cost ties broken
// toward static slack), but it also reports the true second-lowest
// insertion cost so the caller can compute a meaningful regret. c2 is +Inf
// only when a single machine is feasible.
func (st *state) bestTwoMachinesFor(s cluster.ShardID) (best cluster.MachineID, c1, c2 float64) {
	c := st.cur.Cluster()
	best = cluster.Unassigned
	c1, c2 = math.Inf(1), math.Inf(1)
	bestSlack := -1.0
	for m := 0; m < c.NumMachines(); m++ {
		id := cluster.MachineID(m)
		if !st.canInsert(s, id) {
			continue
		}
		cost := st.insertCost(s, id)
		switch {
		case cost < c1-1e-12:
			c2 = c1
			best, c1 = id, cost
			bestSlack = st.cur.Free(id).MaxDim()
		case cost <= c1+1e-12:
			// ties the current best: it is also a runner-up cost
			if cost < c2 {
				c2 = cost
			}
			if slack := st.cur.Free(id).MaxDim(); slack > bestSlack {
				best, bestSlack = id, slack
			}
		case cost < c2:
			c2 = cost
		}
	}
	return best, c1, c2
}

// repairRegret is regret-2 insertion: always commit the shard whose best
// option beats its second-best by the most (it has the most to lose by
// waiting). To keep the O(pool²·machines) cost in check on large fleets,
// each evaluation scans a candidate subset — the lowest-utilization
// machines plus random extras — and falls back to a full scan only when
// the subset yields nothing feasible. The fallback computes a true
// second-best cost: leaving c2 at +Inf would inflate the regret to ~1e18
// and hand the shard top priority merely because the subset missed its
// alternatives.
func (st *state) repairRegret() bool {
	remaining := append(st.remainScratch[:0], st.pool...)
	st.remainScratch = remaining
	for len(remaining) > 0 {
		cands := st.candidateMachines()
		bestIdx := -1
		var bestM cluster.MachineID
		bestRegret := -1.0
		for i, s := range remaining {
			m1 := cluster.Unassigned
			c1, c2 := math.Inf(1), math.Inf(1)
			for _, id := range cands {
				if !st.canInsert(s, id) {
					continue
				}
				cost := st.insertCost(s, id)
				switch {
				case cost < c1:
					m1, c2, c1 = id, c1, cost
				case cost < c2:
					c2 = cost
				}
			}
			if m1 == cluster.Unassigned {
				// candidate subset failed: full scan for this shard
				m1, c1, c2 = st.bestTwoMachinesFor(s)
				if m1 == cluster.Unassigned {
					return false
				}
			}
			regret := c2 - c1
			if math.IsInf(regret, 1) {
				regret = 1e18 - c1 // single option: place before it disappears
			}
			if regret > bestRegret {
				bestIdx, bestM, bestRegret = i, m1, regret
			}
		}
		if bestIdx < 0 {
			return false
		}
		s := remaining[bestIdx]
		if err := st.cur.Place(s, bestM); err != nil {
			return false
		}
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return true
}

// machUtil is a machine with its utilization, ordered by (util, ID).
type machUtil struct {
	u float64
	m cluster.MachineID
}

// ranksAfter reports whether a orders after b: higher utilization first,
// machine ID as the deterministic tie-break.
func (a machUtil) ranksAfter(b machUtil) bool {
	if a.u > b.u {
		return true
	}
	if a.u < b.u {
		return false
	}
	return a.m > b.m
}

// candidateMachines returns the insertion-candidate subset used by
// repairRegret: the 24 lowest-utilization machines plus 8 random distinct
// extras (all machines when the fleet is small). The lowest set comes from
// a bounded max-heap partial selection — O(n log 24) instead of sorting the
// whole fleet — and the random extras are deduplicated: drawing the same
// machine twice (or one already in the lowest set) would silently shrink
// candidate diversity. All buffers are reused across calls.
func (st *state) candidateMachines() []cluster.MachineID {
	c := st.cur.Cluster()
	n := c.NumMachines()
	const lowCount, randCount = 24, 8
	out := st.candScratch[:0]
	if n <= lowCount+randCount {
		for i := 0; i < n; i++ {
			out = append(out, cluster.MachineID(i))
		}
		st.candScratch = out
		return out
	}

	// Bounded max-heap over (util, ID): the root is the worst of the best
	// lowCount seen so far and is evicted whenever a better machine
	// arrives.
	h := st.candHeap[:0]
	for i := 0; i < n; i++ {
		e := machUtil{st.cur.Utilization(cluster.MachineID(i)), cluster.MachineID(i)}
		if len(h) < lowCount {
			h = append(h, e)
			for j := len(h) - 1; j > 0; { // sift up
				parent := (j - 1) / 2
				if !h[j].ranksAfter(h[parent]) {
					break
				}
				h[j], h[parent] = h[parent], h[j]
				j = parent
			}
			continue
		}
		if !h[0].ranksAfter(e) {
			continue
		}
		h[0] = e
		for j := 0; ; { // sift down
			l, r := 2*j+1, 2*j+2
			big := j
			if l < len(h) && h[l].ranksAfter(h[big]) {
				big = l
			}
			if r < len(h) && h[r].ranksAfter(h[big]) {
				big = r
			}
			if big == j {
				break
			}
			h[j], h[big] = h[big], h[j]
			j = big
		}
	}
	st.candHeap = h

	// Emit the selection ascending by (util, ID) — the order the previous
	// full sort produced — via insertion sort (24 elements, no closure).
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && h[j-1].ranksAfter(h[j]); j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
	for _, e := range h {
		out = append(out, e.m)
	}

	// Distinct random extras from the rest of the fleet; rejection
	// sampling terminates because n > lowCount+randCount.
	for len(out) < lowCount+randCount {
		m := cluster.MachineID(st.rng.Intn(n))
		dup := false
		for _, seen := range out {
			if seen == m {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m)
		}
	}
	st.candScratch = out
	return out
}
